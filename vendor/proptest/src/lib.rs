//! Vendored, self-contained reimplementation of the subset of the `proptest` API this
//! workspace uses.
//!
//! The build environment has no network route to a crates.io registry, so the real
//! `proptest` crate cannot be downloaded.  This stub supports the patterns the test
//! suite actually writes:
//!
//! * the [`proptest!`] macro, with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute and
//!   `arg in strategy` bindings;
//! * numeric range strategies (`16usize..64`, `0.0f64..1.0`, `0u64..u64::MAX`, ...);
//! * combinators: [`Strategy::prop_map`], [`prop_oneof!`] over same-valued
//!   strategies, and [`collection::vec`] for variable-length vectors;
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Unlike the real proptest there is **no shrinking** and no persistence of failing
//! cases: a failing case panics with the sampled inputs so it can be reproduced by
//! hand.  Sampling is deterministic per test function (fixed seed + case index), which
//! suits a CI environment better than OS entropy anyway.

use rand::rngs::SmallRng;

pub mod test_runner {
    //! Runner configuration and case-level control flow.

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases sampled per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real default is 256; 64 keeps the simulator-heavy properties fast
            // while still exercising a meaningful sample of the input space.
            Self { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped, not failed.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Convenience constructor used by the assertion macros.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// Convenience constructor used by `prop_assume!`.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.  Only numeric ranges are needed here.

    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A source of values for one `arg in strategy` binding.
    pub trait Strategy {
        /// The generated type.
        type Value: Clone + Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;

        /// Transforms every sampled value through `f` (`proptest`'s `prop_map`).
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            T: Clone + Debug,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        T: Clone + Debug,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            (self.f)(self.source.sample(rng))
        }
    }

    /// A uniform choice among boxed same-valued strategies — the [`prop_oneof!`]
    /// expansion.  (The real macro supports weights; the uniform subset is all the
    /// workspace uses.)
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T> {
        variants: Vec<Box<dyn Strategy<Value = T> + Send + Sync>>,
    }

    impl<T: Clone + Debug> Union<T> {
        /// A union drawing uniformly from `variants` (must be non-empty).
        pub fn new(variants: Vec<Box<dyn Strategy<Value = T> + Send + Sync>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one strategy");
            Self { variants }
        }
    }

    impl<T: Clone + Debug> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            let pick = rng.gen_range(0..self.variants.len());
            self.variants[pick].sample(rng)
        }
    }

    /// The [`collection::vec`](crate::collection::vec) strategy: `length` draws of
    /// `element`.
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) length: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.length.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// `proptest::strategy::Just` — always the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies (only `vec` is needed here).

    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A vector of `element` draws with a length sampled from `length`.
    pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, length }
    }
}

/// Chooses uniformly among same-valued strategies each draw (`proptest`'s macro
/// supports `weight => strategy` entries; this subset is unweighted).
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strategy:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( ::std::boxed::Box::new($strategy) ),+
        ])
    };
}

/// Deterministic per-test RNG used by the [`proptest!`] expansion.
#[doc(hidden)]
pub fn __test_rng(test_name: &str) -> SmallRng {
    use rand::SeedableRng;
    // FNV-1a over the test name so each property gets its own stream.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(hash)
}

/// Defines property tests: samples each `arg in strategy` binding `config.cases` times
/// and runs the body; failures panic with the sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                let mut __rng = $crate::__test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);
                    )*
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)* ""),
                        $(::std::clone::Clone::clone(&$arg),)*
                    );
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            // Input rejected by prop_assume!; skip this case.
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest case {} failed: {}\n  inputs: {}",
                                __case, __msg, __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = ($left, $right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Skips the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_respect_bounds(x in 3usize..9, f in 0.25f64..0.75, s in 1u64..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((1..=4).contains(&s));
        }
    }

    proptest! {
        #[test]
        fn assume_skips_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn combinators_compose(
            doubled in (0u32..100).prop_map(|x| x * 2),
            choice in prop_oneof![Just(1u8), Just(2), 10u8..20],
            items in crate::collection::vec(0u64..5, 1..8),
        ) {
            prop_assert!(doubled % 2 == 0);
            prop_assert!(choice == 1 || choice == 2 || (10..20).contains(&choice));
            prop_assert!((1..8).contains(&items.len()));
            prop_assert!(items.iter().all(|&v| v < 5));
        }
    }

    #[test]
    fn per_test_rng_is_deterministic() {
        use rand::RngCore;
        let mut a = crate::__test_rng("some::test");
        let mut b = crate::__test_rng("some::test");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
