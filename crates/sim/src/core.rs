//! One SMT core: thread contexts, issue logic, execution pipes.
//!
//! The issue loop runs entirely over the pre-decoded kernel representation
//! ([`DecodedBody`]): per issue it does flat-array loads, one bitmask dependency scan
//! and one scoreboard update — no allocation, no hashing, no re-encoding.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mp_isa::{IssueClass, Unit};
use mp_uarch::{CounterValues, MemLevel, MicroArchitecture};

use crate::cache_sim::CoreCaches;
use crate::decoded::{for_each_reg, masks_intersect, regs_ready, DecodedBody};
use crate::energy::{EnergyBreakdown, EnergyParams};
use crate::uncore::{UncoreMode, UncoreSim};

/// Number of in-flight instructions a thread can look ahead over when issuing — a small
/// out-of-order window standing in for POWER7's much larger out-of-order engine.
const ISSUE_WINDOW: usize = 12;
/// Pipeline flush penalty in cycles on a branch misprediction.
const MISPREDICT_PENALTY: u64 = 15;

/// One entry of a thread's issue window: a dynamic instance of a body instruction.
#[derive(Debug, Clone, Copy)]
struct WindowEntry {
    body_idx: usize,
    issued: bool,
}

/// One execution pipe of a functional unit.
#[derive(Debug, Clone, Copy, Default)]
struct Pipe {
    busy_until: f64,
    last_encoding: u32,
}

/// Architectural state and issue window of one hardware thread.
#[derive(Debug)]
struct ThreadContext {
    /// The thread's kernel, compiled to the dense hot-loop representation.
    body: DecodedBody,
    window: VecDeque<WindowEntry>,
    next_fetch: usize,
    /// Ready time of every register, indexed by the kernel's dense register id.
    reg_ready: Vec<u64>,
    stall_until: u64,
    counters: CounterValues,
    rng: SmallRng,
}

impl ThreadContext {
    fn new(body: DecodedBody, seed: u64) -> Self {
        let reg_ready = vec![0; body.dense_regs()];
        Self {
            body,
            window: VecDeque::with_capacity(ISSUE_WINDOW),
            next_fetch: 0,
            reg_ready,
            stall_until: 0,
            counters: CounterValues::default(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    fn refill_window(&mut self) {
        while self.window.len() < ISSUE_WINDOW {
            self.window.push_back(WindowEntry { body_idx: self.next_fetch, issued: false });
            self.next_fetch = (self.next_fetch + 1) % self.body.len();
        }
    }

    fn retire_issued_head(&mut self) {
        while matches!(self.window.front(), Some(e) if e.issued) {
            self.window.pop_front();
        }
    }
}

/// The per-unit execution pipes of one core.
#[derive(Debug)]
struct Pipes {
    fxu: Vec<Pipe>,
    lsu: Vec<Pipe>,
    vsu: Vec<Pipe>,
    dfu: Vec<Pipe>,
    bru: Vec<Pipe>,
}

impl Pipes {
    /// Picks an execution pipe of `issue`'s class that frees up during cycle `now`.
    fn select(&self, issue: IssueClass, now: u64) -> Option<(Unit, usize)> {
        let deadline = (now + 1) as f64 - 1e-9;
        let free = |pipes: &[Pipe]| pipes.iter().position(|p| p.busy_until <= deadline);
        match issue {
            IssueClass::Fxu => free(&self.fxu).map(|i| (Unit::Fxu, i)),
            IssueClass::Lsu => free(&self.lsu).map(|i| (Unit::Lsu, i)),
            IssueClass::Vsu => free(&self.vsu).map(|i| (Unit::Vsu, i)),
            IssueClass::Dfu => free(&self.dfu).map(|i| (Unit::Dfu, i)),
            IssueClass::Bru => free(&self.bru).map(|i| (Unit::Bru, i)),
            IssueClass::FxuOrLsu => free(&self.fxu)
                .map(|i| (Unit::Fxu, i))
                .or_else(|| free(&self.lsu).map(|i| (Unit::Lsu, i))),
        }
    }

    fn get_mut(&mut self, unit: Unit, idx: usize) -> &mut Pipe {
        match unit {
            Unit::Fxu => &mut self.fxu[idx],
            Unit::Lsu => &mut self.lsu[idx],
            Unit::Vsu => &mut self.vsu[idx],
            Unit::Dfu => &mut self.dfu[idx],
            Unit::Bru => &mut self.bru[idx],
            Unit::Ifu | Unit::Isu => unreachable!("IFU/ISU are not execution pipes"),
        }
    }
}

/// One simulated SMT core.
#[derive(Debug)]
pub(crate) struct CoreSim {
    threads: Vec<ThreadContext>,
    caches: CoreCaches,
    pipes: Pipes,
    dispatch_width: u32,
    prefetch_counted: u64,
    /// Units that issued at least one instruction in the current cycle
    /// (FXU, LSU, VSU, DFU, BRU) — drives the per-active-cycle wake energy.
    cycle_units: [bool; 5],
}

fn unit_slot(unit: Unit) -> Option<usize> {
    match unit {
        Unit::Fxu => Some(0),
        Unit::Lsu => Some(1),
        Unit::Vsu => Some(2),
        Unit::Dfu => Some(3),
        Unit::Bru => Some(4),
        Unit::Ifu | Unit::Isu => None,
    }
}

const UNIT_SLOTS: [Unit; 5] = [Unit::Fxu, Unit::Lsu, Unit::Vsu, Unit::Dfu, Unit::Bru];

impl CoreSim {
    /// Creates a core running one pre-decoded kernel body per hardware thread.  The
    /// caller decodes each distinct kernel once (see `ChipSim::run_heterogeneous`) and
    /// clones the bodies across threads; the per-cycle loop never sees an
    /// `Instruction` again.
    pub(crate) fn new(
        uarch: &MicroArchitecture,
        bodies: Vec<DecodedBody>,
        prefetch_enabled: bool,
        seed: u64,
        uncore_mode: UncoreMode,
    ) -> Self {
        let threads = bodies
            .into_iter()
            .enumerate()
            .map(|(i, b)| ThreadContext::new(b, seed.wrapping_add(i as u64 * 7919)))
            .collect();
        let pipes = |n: u32| vec![Pipe::default(); n as usize];
        let caches = match uncore_mode {
            // Shared mode: the private L3 slice would never be touched, skip it.
            UncoreMode::Private => CoreCaches::new(&uarch.hierarchy, prefetch_enabled),
            UncoreMode::Shared => CoreCaches::new_shared(&uarch.hierarchy, prefetch_enabled),
        };
        Self {
            threads,
            caches,
            pipes: Pipes {
                fxu: pipes(uarch.pipes.fxu),
                lsu: pipes(uarch.pipes.lsu),
                vsu: pipes(uarch.pipes.vsu),
                dfu: pipes(uarch.pipes.dfu),
                bru: pipes(uarch.pipes.bru),
            },
            dispatch_width: uarch.pipes.dispatch_width,
            prefetch_counted: 0,
            cycle_units: [false; 5],
        }
    }

    /// Resets the performance counters (keeps caches and timing state), used at the end
    /// of the warm-up phase.
    pub(crate) fn reset_counters(&mut self) {
        for t in &mut self.threads {
            t.counters = CounterValues::default();
        }
        self.prefetch_counted = self.caches.prefetches_issued();
    }

    /// Per-thread counters, with the cycle counter set to `cycles`.
    pub(crate) fn counters(&self, cycles: u64) -> Vec<CounterValues> {
        self.threads
            .iter()
            .map(|t| {
                let mut c = t.counters;
                c.cycles = cycles;
                c
            })
            .collect()
    }

    /// Advances the core by one cycle, issuing instructions and accruing dynamic energy
    /// into `energy`.  Memory accesses beyond the private L2 go through `uncore` (the
    /// local L3 slice in private mode, the chip-shared L3 + memory port in shared mode).
    pub(crate) fn step(
        &mut self,
        now: u64,
        params: &EnergyParams,
        energy: &mut EnergyBreakdown,
        uncore: &mut UncoreSim,
    ) {
        let nthreads = self.threads.len();
        if nthreads == 0 {
            return;
        }
        let mut dispatch_left = self.dispatch_width;
        let start = (now as usize) % nthreads;
        self.cycle_units = [false; 5];

        for i in 0..nthreads {
            if dispatch_left == 0 {
                break;
            }
            let tid = (start + i) % nthreads;
            dispatch_left = self.step_thread(tid, now, params, energy, uncore, dispatch_left);
        }

        // Clock-gating: every unit that woke up this cycle pays a fixed wake-up energy,
        // independent of how many operations it executed.
        for (slot, unit) in UNIT_SLOTS.iter().enumerate() {
            if self.cycle_units[slot] {
                energy.dynamic_compute += params.wake_energy(*unit);
            }
        }
    }

    /// Tries to issue instructions from one thread; returns the remaining dispatch slots.
    fn step_thread(
        &mut self,
        tid: usize,
        now: u64,
        params: &EnergyParams,
        energy: &mut EnergyBreakdown,
        uncore: &mut UncoreSim,
        mut dispatch_left: u32,
    ) -> u32 {
        let Self { threads, caches, pipes, cycle_units, .. } = self;
        let thread = &mut threads[tid];
        if thread.stall_until > now {
            return dispatch_left;
        }
        thread.refill_window();
        let ThreadContext { body, window, reg_ready, stall_until, counters, rng, .. } =
            &mut *thread;
        let window = window.make_contiguous();

        for w in 0..window.len() {
            if dispatch_left == 0 {
                break;
            }
            let entry = window[w];
            if entry.issued {
                continue;
            }
            let idx = entry.body_idx;

            // Register dependencies: every source must have been produced (its writer
            // already issued) and its value must be available by this cycle.
            let ready = {
                let reads = body.reads_mask(idx);
                regs_ready(reads, reg_ready, now)
                    && !window[..w]
                        .iter()
                        .any(|e| !e.issued && masks_intersect(body.writes_mask(e.body_idx), reads))
            };
            if !ready {
                continue;
            }

            // Execution pipe of the right class must be free.
            let Some((unit, pipe_idx)) = pipes.select(body.issue_class(idx), now) else {
                continue;
            };

            // Shared-uncore back-pressure: a demand access that would need a memory
            // line transfer cannot issue while the port queue is full.  The thread
            // stalls for the cycle (an LSU reject/replay) and retries; the held-off
            // request keeps the queue logic powered, which is the bandwidth-stall
            // uncore energy term.
            if let Some(mem) = body.mem(idx) {
                if !body.flags(idx).is_prefetch() && !caches.admits(mem.address, now, uncore) {
                    counters.bw_stalls += 1;
                    energy.uncore += params.uncore_stall_energy;
                    break;
                }
            }

            // ---- issue ----
            dispatch_left -= 1;
            window[w].issued = true;
            if let Some(slot) = unit_slot(unit) {
                cycle_units[slot] = true;
            }

            let flags = body.flags(idx);
            let mut total_latency = body.latency(idx);

            // Memory access (demand or prefetch).
            let mut mem_energy = 0.0;
            let mut uncore_energy = 0.0;
            if let Some(mem) = body.mem(idx) {
                if flags.is_prefetch() {
                    if uncore.is_shared() {
                        uncore_energy += caches.prefetch_shared(mem.address, now, uncore, params);
                    } else {
                        caches.prefetch(mem.address);
                    }
                    // The prefetch instruction executes (and costs issue energy) even
                    // when a full port queue drops its line transfer.
                    counters.prefetches += 1;
                    mem_energy += params.prefetch_energy;
                } else {
                    let outcome = if uncore.is_shared() {
                        // L1/L2 stay core-side energy; the shared L3 and memory port
                        // accrue *uncore* energy, returned alongside the outcome.
                        let (outcome, event_energy) =
                            caches.access_shared(mem.address, now, uncore, params);
                        uncore_energy += event_energy;
                        if matches!(outcome.level, MemLevel::L1 | MemLevel::L2) {
                            mem_energy += params.access_energy(outcome.level);
                        }
                        outcome
                    } else {
                        let outcome = caches.access(mem.address);
                        mem_energy += params.access_energy(outcome.level);
                        outcome
                    };
                    total_latency += u64::from(outcome.latency);
                    if outcome.prefetched {
                        mem_energy += params.prefetch_energy;
                        counters.prefetches += 1;
                    }
                    if mem.is_store {
                        counters.stores += 1;
                    } else {
                        counters.loads += 1;
                    }
                    match outcome.level {
                        MemLevel::L1 => counters.l1_hits += 1,
                        MemLevel::L2 => counters.l2_hits += 1,
                        MemLevel::L3 => {
                            counters.l3_hits += 1;
                            counters.l3_accesses += 1;
                        }
                        MemLevel::Mem => {
                            counters.mem_accesses += 1;
                            counters.l3_accesses += 1;
                            counters.l3_misses += 1;
                        }
                    }
                    counters.bw_stalls += u64::from(outcome.bw_stall);
                }
            }

            // Destination registers become ready after the full latency.
            for_each_reg(body.writes_mask(idx), |reg| reg_ready[reg] = now + total_latency);

            // Occupy the pipe for the instruction's reciprocal throughput and charge the
            // order-dependent switching energy against the previous instruction executed
            // on the same physical pipe.
            let enc = body.encoding(idx);
            let pipe = pipes.get_mut(unit, pipe_idx);
            let switch_bits = (enc ^ pipe.last_encoding).count_ones();
            // Accumulate the fractional occupancy so that non-integer reciprocal
            // throughputs (e.g. 1.14 cycles) are honoured in the long-run average.
            pipe.busy_until = pipe.busy_until.max(now as f64) + body.recip_throughput(idx);
            pipe.last_encoding = enc;

            energy.dynamic_compute += params.instruction_energy(
                unit,
                body.complexity(idx),
                body.width(idx),
                switch_bits,
                body.switching_factor(),
            );
            energy.dynamic_memory += mem_energy;
            energy.uncore += uncore_energy;

            // Branches: conditional ones may mispredict and flush the thread.
            if flags.is_branch() {
                counters.bru_ops += 1;
                if flags.is_conditional() {
                    let rate = body.mispredict_rate();
                    if rate > 0.0 && rng.gen::<f64>() < rate {
                        *stall_until = now + MISPREDICT_PENALTY;
                        energy.dynamic_compute += params.flush_energy;
                    }
                }
            } else {
                match unit {
                    Unit::Fxu => counters.fxu_ops += 1,
                    Unit::Lsu => counters.lsu_ops += 1,
                    Unit::Vsu => counters.vsu_ops += 1,
                    Unit::Dfu => counters.dfu_ops += 1,
                    Unit::Bru => counters.bru_ops += 1,
                    Unit::Ifu | Unit::Isu => {}
                }
            }
            counters.instr_completed += 1;

            if *stall_until > now {
                break;
            }
        }

        thread.retire_issued_head();
        dispatch_left
    }

    /// Exposes the ISA needed to rebuild instruction info in tests.
    #[cfg(test)]
    pub(crate) fn thread_count(&self) -> usize {
        self.threads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_isa::{Instruction, Isa, Operand, RegRef};
    use mp_uarch::power7;

    fn rrr(isa: &Isa, m: &str, d: u16, a: u16, b: u16) -> Instruction {
        let (id, _) = isa.get(m).unwrap();
        Instruction::new(
            isa,
            id,
            vec![
                Operand::Reg(RegRef::gpr(d)),
                Operand::Reg(RegRef::gpr(a)),
                Operand::Reg(RegRef::gpr(b)),
            ],
            None,
        )
        .unwrap()
    }

    fn decode_all(uarch: &MicroArchitecture, kernels: &[Kernel]) -> Vec<DecodedBody> {
        let props = uarch.opcode_props();
        kernels.iter().map(|k| DecodedBody::decode(k, uarch, &props)).collect()
    }

    fn run_core(
        uarch: &MicroArchitecture,
        kernel: Kernel,
        cycles: u64,
    ) -> (Vec<CounterValues>, EnergyBreakdown) {
        let mut core =
            CoreSim::new(uarch, decode_all(uarch, &[kernel]), false, 1, UncoreMode::Private);
        let mut uncore = UncoreSim::new(uarch, UncoreMode::Private);
        let mut energy = EnergyBreakdown::default();
        let params = EnergyParams::power7();
        // Warm up then measure.
        for now in 0..1000u64 {
            core.step(now, &params, &mut energy, &mut uncore);
        }
        core.reset_counters();
        let mut energy = EnergyBreakdown::default();
        for now in 1000..1000 + cycles {
            core.step(now, &params, &mut energy, &mut uncore);
        }
        (core.counters(cycles), energy)
    }

    #[test]
    fn independent_fxu_only_ops_reach_two_ipc() {
        let uarch = power7();
        let isa = &uarch.isa;
        // Independent subf instructions: writes to distinct registers, reads constants.
        let body: Vec<Instruction> =
            (0..64).map(|i| rrr(isa, "subf", (i % 8) as u16, 10, 11)).collect();
        let (counters, _) = run_core(&uarch, Kernel::new("subf", body), 4000);
        let ipc = counters[0].ipc();
        assert!((1.7..=2.2).contains(&ipc), "FXU-only IPC should be ~2.0, got {ipc}");
        assert!(counters[0].fxu_ops > 0);
        assert_eq!(counters[0].vsu_ops, 0);
    }

    #[test]
    fn simple_ops_exceed_three_ipc_using_both_fxu_and_lsu() {
        let uarch = power7();
        let isa = &uarch.isa;
        let body: Vec<Instruction> =
            (0..64).map(|i| rrr(isa, "add", (i % 8) as u16, 10, 11)).collect();
        let (counters, _) = run_core(&uarch, Kernel::new("add", body), 4000);
        let ipc = counters[0].ipc();
        assert!(ipc > 3.0, "simple integer IPC should exceed 3, got {ipc}");
        assert!(counters[0].fxu_ops > 0 && counters[0].lsu_ops > 0);
    }

    #[test]
    fn dependency_chain_limits_ipc_to_inverse_latency() {
        let uarch = power7();
        let isa = &uarch.isa;
        // mulld r3 <- r3, r3 chained: IPC ~ 1/latency (latency 4).
        let body: Vec<Instruction> = (0..64).map(|_| rrr(isa, "mulld", 3, 3, 3)).collect();
        let (counters, _) = run_core(&uarch, Kernel::new("chain", body), 4000);
        let ipc = counters[0].ipc();
        assert!((0.2..=0.3).contains(&ipc), "chained mulld IPC should be ~0.25, got {ipc}");
    }

    #[test]
    fn energy_scales_with_activity() {
        let uarch = power7();
        let isa = &uarch.isa;
        let busy: Vec<Instruction> =
            (0..64).map(|i| rrr(isa, "add", (i % 8) as u16, 10, 11)).collect();
        let lazy: Vec<Instruction> = (0..64).map(|_| rrr(isa, "mulld", 3, 3, 3)).collect();
        let (_, e_busy) = run_core(&uarch, Kernel::new("busy", busy), 4000);
        let (_, e_lazy) = run_core(&uarch, Kernel::new("lazy", lazy), 4000);
        assert!(e_busy.dynamic() > e_lazy.dynamic());
    }

    #[test]
    fn zero_data_reduces_energy() {
        let uarch = power7();
        let isa = &uarch.isa;
        let body: Vec<Instruction> =
            (0..64).map(|i| rrr(isa, "xor", (i % 8) as u16, 10, 11)).collect();
        let random = Kernel::new("rand", body.clone()).with_data_profile(DataProfile::Random);
        let zeros = Kernel::new("zeros", body).with_data_profile(DataProfile::Zeros);
        let (_, e_rand) = run_core(&uarch, random, 4000);
        let (_, e_zero) = run_core(&uarch, zeros, 4000);
        assert!(e_zero.dynamic_compute < e_rand.dynamic_compute);
    }

    use crate::kernel::{DataProfile, Kernel};

    #[test]
    fn smt_threads_share_core_resources() {
        let uarch = power7();
        let isa = &uarch.isa;
        let body: Vec<Instruction> =
            (0..64).map(|i| rrr(isa, "subf", (i % 8) as u16, 10, 11)).collect();
        let kernel = Kernel::new("subf", body);
        let params = EnergyParams::power7();

        let ipc_for = |n: usize| {
            let mut core = CoreSim::new(
                &uarch,
                decode_all(&uarch, &vec![kernel.clone(); n]),
                false,
                3,
                UncoreMode::Private,
            );
            let mut uncore = UncoreSim::new(&uarch, UncoreMode::Private);
            let mut e = EnergyBreakdown::default();
            for now in 0..3000u64 {
                core.step(now, &params, &mut e, &mut uncore);
            }
            core.reset_counters();
            for now in 3000..6000u64 {
                core.step(now, &params, &mut e, &mut uncore);
            }
            let total: u64 = core.counters(3000).iter().map(|c| c.instr_completed).sum();
            total as f64 / 3000.0
        };
        let one = ipc_for(1);
        let four = ipc_for(4);
        // FXU-only work saturates the 2 FXU pipes regardless of SMT: aggregate IPC stays
        // ~2 while per-thread IPC drops.
        assert!((one - 2.0).abs() < 0.3, "1-thread IPC {one}");
        assert!((four - 2.0).abs() < 0.3, "4-thread aggregate IPC {four}");
    }

    #[test]
    fn mispredicting_branches_reduce_throughput() {
        let uarch = power7();
        let isa = &uarch.isa;
        let (bc, _) = isa.get("bc").unwrap();
        let mut body: Vec<Instruction> =
            (0..32).map(|i| rrr(isa, "add", (i % 8) as u16, 10, 11)).collect();
        body.push(
            Instruction::new(isa, bc, vec![Operand::CrField(0), Operand::BranchTarget(-32)], None)
                .unwrap(),
        );
        let clean = Kernel::new("clean", body.clone());
        let noisy = Kernel::new("noisy", body).with_mispredict_rate(0.5);
        let (c_clean, _) = run_core(&uarch, clean, 4000);
        let (c_noisy, _) = run_core(&uarch, noisy, 4000);
        assert!(c_noisy[0].instr_completed < c_clean[0].instr_completed);
        assert!(c_noisy[0].bru_ops > 0);
    }

    #[test]
    fn core_reports_one_counter_set_per_thread() {
        let uarch = power7();
        let isa = &uarch.isa;
        let body: Vec<Instruction> = vec![rrr(isa, "add", 1, 2, 3)];
        let core = CoreSim::new(
            &uarch,
            decode_all(&uarch, &vec![Kernel::new("k", body); 4]),
            false,
            0,
            UncoreMode::Private,
        );
        assert_eq!(core.thread_count(), 4);
        assert_eq!(core.counters(10).len(), 4);
    }
}
