//! Quickstart: the Rust equivalent of the paper's Figure 2 script.
//!
//! Generates ten micro-benchmarks, each an endless loop of vector-load instructions that
//! hit the three cache levels equally, then runs the first one on the simulated POWER7
//! and prints its counters and power.

use microprobe::platform::Platform;
use microprobe::prelude::*;
use mp_examples::example_platform;

fn main() -> Result<(), PassError> {
    // Get the architecture object (Figure 2, lines 2-3).
    let arch = mp_uarch::power7();

    // Pass 2: select the loads that stress the VSU (lines 11-17).
    let loads_vsu: Vec<_> = arch.isa.select(|d| d.is_load() && d.stresses(mp_isa::Unit::Vsu));
    println!("selected {} VSU loads from the ISA", loads_vsu.len());

    // Create the synthesizer and add the passes (lines 4-29).
    let mut synth = Synthesizer::new(arch.clone()).with_name_prefix("example");
    synth.add_pass(SkeletonPass::endless_loop(4096));
    synth.add_pass(InstructionMixPass::uniform(loads_vsu));
    synth.add_pass(MemoryPass::new(HitDistribution::caches_balanced()));
    synth.add_pass(InitRegistersPass::constant());
    synth.add_pass(InitImmediatesPass::pattern01());
    synth.add_pass(DependencyDistancePass::random(1, 8));

    // Generate the 10 micro-benchmarks (lines 31-33).
    let benchmarks = synth.synthesize_many(10)?;
    println!(
        "generated {} micro-benchmarks of {} instructions each",
        benchmarks.len(),
        benchmarks[0].kernel().len()
    );

    // Show the first few lines of the generated assembly.
    let listing = benchmarks[0].to_asm(&arch.isa);
    println!("\nfirst instructions of {}:", benchmarks[0].name());
    for line in listing.lines().take(8) {
        println!("  {line}");
    }

    // Run one copy per hardware thread on a 4-core SMT2 configuration and report.
    let platform = example_platform();
    let config = CmpSmtConfig::new(4, SmtMode::Smt2);
    let m = platform.run(&benchmarks[0], config);
    let counters = m.chip_counters();
    println!("\nmeasured on {config}:");
    println!("  chip IPC        : {:.2}", m.chip_ipc());
    println!("  L1 hits/cycle   : {:.3}", counters.rate(mp_uarch::CounterId::L1Hits));
    println!("  L2 hits/cycle   : {:.3}", counters.rate(mp_uarch::CounterId::L2Hits));
    println!("  L3 hits/cycle   : {:.3}", counters.rate(mp_uarch::CounterId::L3Hits));
    println!("  average power   : {:.1} (normalized units)", m.average_power());
    Ok(())
}
