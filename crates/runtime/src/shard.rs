//! A sharded, concurrently-accessible memo cache.
//!
//! The [`ExperimentSession`](crate::ExperimentSession) used to keep its memo map behind
//! one global `Mutex<HashMap>`, which serialised every submitter — fine for one driver
//! thread, pathological for the measurement *service*, where many client connections
//! submit batches against the same session concurrently.  [`ShardedCache`] splits the
//! map into `next_pow2(4 × cores)` independently-locked shards selected by the low bits
//! of the 128-bit job key (the key's low half is a hash output, so the low bits are
//! uniformly distributed), so concurrent submitters only contend when they touch the
//! same shard.
//!
//! The entry count is tracked in a relaxed atomic beside the shards, so size queries
//! (the `session.memo_entries` telemetry gauge, stats summaries) never take a shard
//! lock.  Every lock acquisition goes through [`poison`](crate::poison) recovery: the
//! shards only ever see plain map operations, never caller code, so a panicking
//! measurement job elsewhere can never wedge the cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::poison;

/// The sharding factor: shards = `next_pow2(FACTOR × available cores)`.  Over-sharding
/// relative to the core count keeps the probability of two concurrent submitters
/// hashing into the same shard low without measurable memory cost.
const SHARD_FACTOR: usize = 4;

/// The default shard count for this host.
fn default_shards() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    (SHARD_FACTOR * cores).next_power_of_two()
}

/// A concurrent `u128 → V` map sharded over independently-locked `HashMap`s.
///
/// All methods take `&self`; the cache is internally synchronised and safe to share
/// across threads.  Values are handed out by clone ([`get`](Self::get)), never by
/// reference, so no caller ever holds a shard lock across its own code.
pub struct ShardedCache<V> {
    shards: Box<[Mutex<HashMap<u128, V>>]>,
    /// `shards.len() - 1`; the shard count is a power of two so masking the key's low
    /// bits is the full selection function.
    mask: usize,
    /// Total entries across all shards, maintained on insert so size queries are
    /// lock-free.
    entries: AtomicUsize,
}

impl<V> Default for ShardedCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> ShardedCache<V> {
    /// A cache with the default shard count for this host
    /// (`next_pow2(4 × available cores)`).
    pub fn new() -> Self {
        Self::with_shards(default_shards())
    }

    /// A cache with at least `shards` shards (rounded up to a power of two, minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        let shards: Box<[Mutex<HashMap<u128, V>>]> =
            (0..count).map(|_| Mutex::new(HashMap::new())).collect();
        Self { shards, mask: count - 1, entries: AtomicUsize::new(0) }
    }

    /// The number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key lives in: selected by the key's low bits.
    fn shard(&self, key: u128) -> &Mutex<HashMap<u128, V>> {
        &self.shards[(key as usize) & self.mask]
    }

    /// Whether `key` has an entry.
    pub fn contains(&self, key: u128) -> bool {
        poison::lock(self.shard(key)).contains_key(&key)
    }

    /// Inserts (or replaces) the entry for `key`.  Returns `true` when the key was new.
    pub fn insert(&self, key: u128, value: V) -> bool {
        let fresh = poison::lock(self.shard(key)).insert(key, value).is_none();
        if fresh {
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
        fresh
    }

    /// Total entries across all shards.  Lock-free: reads the maintained atomic.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// Returns `true` when no shard has any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V: Clone> ShardedCache<V> {
    /// The value for `key`, cloned out from under its shard lock.
    pub fn get(&self, key: u128) -> Option<V> {
        poison::lock(self.shard(key)).get(&key).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_counts_round_up_to_powers_of_two() {
        assert_eq!(ShardedCache::<u32>::with_shards(0).shard_count(), 1);
        assert_eq!(ShardedCache::<u32>::with_shards(1).shard_count(), 1);
        assert_eq!(ShardedCache::<u32>::with_shards(3).shard_count(), 4);
        assert_eq!(ShardedCache::<u32>::with_shards(4).shard_count(), 4);
        assert_eq!(ShardedCache::<u32>::with_shards(33).shard_count(), 64);
        let host_default = ShardedCache::<u32>::new().shard_count();
        assert!(host_default.is_power_of_two() && host_default >= 4);
    }

    #[test]
    fn insert_get_and_len_agree() {
        let cache = ShardedCache::with_shards(8);
        assert!(cache.is_empty());
        assert!(cache.insert(7, "seven"));
        assert!(cache.insert(8, "eight"));
        assert!(!cache.insert(7, "seven again"), "overwrite is not a new entry");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(7), Some("seven again"));
        assert_eq!(cache.get(8), Some("eight"));
        assert_eq!(cache.get(9), None);
        assert!(cache.contains(8));
        assert!(!cache.contains(9));
    }

    #[test]
    fn keys_spread_over_shards_by_their_low_bits() {
        let cache = ShardedCache::<u32>::with_shards(8);
        // Keys differing only above the mask land in the same shard; consecutive low
        // bits sweep all shards.
        assert!(std::ptr::eq(cache.shard(0x10), cache.shard(0xFF00_0000_0000_0010)));
        let distinct: std::collections::HashSet<*const _> =
            (0u128..8).map(|k| cache.shard(k) as *const _ as *const ()).collect();
        assert_eq!(distinct.len(), 8, "8 consecutive keys hit 8 distinct shards");
    }

    #[test]
    fn concurrent_mixed_access_is_consistent() {
        let cache = ShardedCache::with_shards(16);
        let threads = 8u32;
        let per_thread = 512u128;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let key = u128::from(t) * per_thread + i;
                        cache.insert(key, key * 3);
                        assert_eq!(cache.get(key), Some(key * 3));
                    }
                });
            }
        });
        assert_eq!(cache.len(), threads as usize * per_thread as usize);
        for key in 0..u128::from(threads) * per_thread {
            assert_eq!(cache.get(key), Some(key * 3));
        }
    }

    #[test]
    fn a_panicked_holder_does_not_wedge_the_shard() {
        let cache = std::sync::Arc::new(ShardedCache::with_shards(2));
        cache.insert(0, 1u64);
        let poisoner = std::sync::Arc::clone(&cache);
        std::thread::spawn(move || {
            let _guard = poisoner.shard(0).lock().expect("first lock is clean");
            panic!("poison shard 0");
        })
        .join()
        .expect_err("the poisoning thread panicked");
        assert_eq!(cache.get(0), Some(1), "poisoned shard recovers with its data intact");
        assert!(!cache.insert(0, 2));
        assert_eq!(cache.get(0), Some(2));
    }
}
