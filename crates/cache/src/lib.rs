//! Analytical set-associative cache model (paper Section 2.1.3).
//!
//! Previous micro-benchmark generators obtained a requested cache hit/miss behaviour by
//! searching over stride patterns with a design space exploration.  MicroProbe instead
//! *statically* constructs an address stream that is guaranteed to produce a requested
//! distribution of hits across the memory hierarchy levels, using two observations:
//!
//! 1. with the address-field knowledge from the micro-architecture definition one can
//!    control exactly which set an access maps to at every cache level, and
//! 2. cycling through more distinct lines than a set has ways guarantees steady-state
//!    misses at that level, while cycling through at most `ways` lines guarantees
//!    steady-state hits.
//!
//! The model assigns *disjoint sets* to each target level (so the streams never evict
//! each other) and sizes each per-level line pool so that the accesses hit exactly at
//! the requested level.  Because all levels share the 128-byte line size, fixing the L1
//! set index automatically confines a stream to a disjoint stripe of L2 and L3 sets.
//!
//! ```
//! use mp_cache::{AccessPlanner, HitDistribution};
//! use mp_uarch::MemoryHierarchy;
//!
//! # fn main() -> Result<(), mp_cache::DistributionError> {
//! let hierarchy = MemoryHierarchy::power7();
//! // A third of the accesses hit each cache level, as in the paper's Figure 2 example.
//! let dist = HitDistribution::new(0.33, 0.33, 0.34, 0.0)?;
//! let plan = AccessPlanner::new(&hierarchy).plan(&dist, 1024, 0, 42);
//! assert_eq!(plan.len(), 1024);
//! # Ok(())
//! # }
//! ```

pub mod distribution;
pub mod planner;

pub use distribution::{DistributionError, HitDistribution};
pub use planner::{AccessPlan, AccessPlanner, PlannedAccess};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::HitDistribution>();
        assert_send_sync::<super::AccessPlan>();
    }
}
