//! Layer 2: memoizing experiment sessions.
//!
//! An [`ExperimentSession`] wraps a [`Platform`] and executes declarative
//! [`ExperimentPlan`]s of `(benchmark, configuration)` measurement jobs.  Every job is
//! content-hashed (the kernel body, data profile, misprediction rate and configuration —
//! the benchmark *name* is deliberately excluded), duplicate jobs are measured once, and
//! the resulting [`Measurement`]s are memoized across plan submissions for the lifetime
//! of the session.  The figure drivers and the integration-test fixtures therefore stop
//! re-measuring the same pairs for every figure/model/test case.
//!
//! The cache has two tiers: the in-memory memo map, and — when `MP_STORE_DIR` is set
//! (or a [`Store`] is attached via [`SessionOptions`]/[`with_store`]) — the crash-safe
//! persistent [`store`](crate::store), so measurements survive restarts and are shared
//! across CI runs and figure binaries.  Lookup order is memory → disk → simulate.
//! Disk hits are *deliberately counted as unique runs* in [`SessionStats`]: the
//! `# Runtime` stdout line stays byte-identical between a cold and a warm store, and
//! all store-specific accounting goes to stderr/telemetry instead
//! ([`report_store`](ExperimentSession::report_store)).
//!
//! Unique jobs are measured on the work-stealing [`executor`](crate::executor); results
//! are handed back in plan order, so output is deterministic regardless of the worker
//! count (the simulator itself is deterministic per job).  A panicking job — real, or
//! injected via [`faults`](crate::faults) — fails only its own batch entry:
//! [`measure_batch_resilient`](ExperimentSession::measure_batch_resilient) returns
//! per-job `Result`s while the worker pool and both cache tiers keep serving.
//!
//! [`with_store`]: ExperimentSession::with_store

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use microprobe::bootstrap::{Bootstrap, BootstrapOptions, BootstrapRecord};
use microprobe::ir::MicroBenchmark;
use microprobe::platform::Platform;
use microprobe::synth::PassError;
use mp_power::{SampleKind, WorkloadSample};
use mp_sim::Measurement;
use mp_uarch::{CmpSmtConfig, InstrPropsTable};

use crate::shard::ShardedCache;
use crate::store::{Store, STORE_DIR_ENV};
use crate::{executor, faults};

/// A 128-bit content fingerprint of one measurement job.
///
/// Two jobs collide exactly when they would produce the same [`Measurement`]: the
/// simulator is a pure function of the backend (fingerprinted by the machine-spec
/// `digest`), the kernel *content* (loop body, data profile, misprediction rate) and
/// the configuration, so the benchmark name is excluded — renamed copies of the same
/// kernel dedupe onto one measurement, but the same kernel measured on two backends
/// occupies two cache entries.
fn job_key(benchmark: &MicroBenchmark, config: CmpSmtConfig, digest: u128) -> u128 {
    use std::fmt::Write as _;

    /// Feeds formatted output into two hashers without materialising a string (kernel
    /// bodies reach thousands of instructions, and keys are recomputed per submission —
    /// including pure cache-hit replays).
    struct DualHasher {
        lo: std::collections::hash_map::DefaultHasher,
        hi: std::collections::hash_map::DefaultHasher,
    }

    impl std::fmt::Write for DualHasher {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            s.hash(&mut self.lo);
            s.hash(&mut self.hi);
            Ok(())
        }
    }

    let kernel = benchmark.kernel();
    let mut hasher = DualHasher {
        lo: std::collections::hash_map::DefaultHasher::new(),
        hi: std::collections::hash_map::DefaultHasher::new(),
    };
    // Distinct per-half prefixes make the two 64-bit digests independent.
    0xA5u8.hash(&mut hasher.lo);
    0x5Au8.hash(&mut hasher.hi);
    digest.hash(&mut hasher.lo);
    digest.hash(&mut hasher.hi);
    // The kernel body has no stable binary serialisation; its `Debug` form is a faithful
    // content encoding (every operand, memory access and attribute).
    write!(
        hasher,
        "{:?}|{:?}|{}|{:?}",
        kernel.body(),
        kernel.data_profile(),
        kernel.mispredict_rate().to_bits(),
        config
    )
    .expect("hashing formatter never fails");
    (u128::from(hasher.hi.finish()) << 64) | u128::from(hasher.lo.finish())
}

/// One labelled measurement job of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedJob {
    /// The workload name attached to the resulting sample.
    pub name: String,
    /// The benchmark to run.
    pub benchmark: MicroBenchmark,
    /// The CMP-SMT configuration to run it on.
    pub config: CmpSmtConfig,
    /// Training-set label of the resulting sample.
    pub kind: SampleKind,
}

/// A declarative batch of measurement jobs.
///
/// Plans are plain data: build one with [`push`](Self::push)/[`sweep`](Self::sweep) and
/// hand it to [`ExperimentSession::run`].  Job order is preserved in the results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExperimentPlan {
    jobs: Vec<PlannedJob>,
}

impl ExperimentPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one job.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        benchmark: MicroBenchmark,
        config: CmpSmtConfig,
        kind: SampleKind,
    ) -> &mut Self {
        self.jobs.push(PlannedJob { name: name.into(), benchmark, config, kind });
        self
    }

    /// Appends one job per configuration for a single benchmark.
    pub fn sweep(
        &mut self,
        name: impl Into<String>,
        benchmark: &MicroBenchmark,
        configs: &[CmpSmtConfig],
        kind: SampleKind,
    ) -> &mut Self {
        let name = name.into();
        for config in configs {
            self.push(name.clone(), benchmark.clone(), *config, kind);
        }
        self
    }

    /// The queued jobs, in submission order.
    pub fn jobs(&self) -> &[PlannedJob] {
        &self.jobs
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Returns `true` when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// Cumulative cache statistics of a session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Jobs submitted across all plans (including repeats).
    pub submitted: usize,
    /// Jobs answered from the memo cache (or deduped within a plan).
    pub hits: usize,
    /// Jobs that required a platform run — or a persistent-store load: disk hits count
    /// here so the stdout summary is identical between a cold and a warm store (the
    /// crash-safety CI step `cmp`s exactly that).
    pub misses: usize,
}

impl SessionStats {
    /// The uniform `# Runtime` stats line every experiment binary prints.
    ///
    /// Deliberately scheduling-independent (submitted/unique/hit counts only, no wall
    /// times or worker counts) *and* store-independent (disk hits count as unique
    /// runs), so binary stdout stays byte-identical across `MP_THREADS` settings and
    /// across cold/warm `MP_STORE_DIR` runs; the variable telemetry goes to stderr via
    /// [`mp_telemetry::report`] and [`ExperimentSession::report_store`].
    pub fn summary_line(&self) -> String {
        format!(
            "# Runtime — {} measurement jobs submitted, {} unique runs, {} memoized hits",
            self.submitted, self.misses, self.hits
        )
    }

    /// [`summary_line`](Self::summary_line) tagged with a label, for binaries driving
    /// several sessions (e.g. one per backend).
    pub fn summary_line_for(&self, label: &str) -> String {
        format!(
            "# Runtime[{label}] — {} measurement jobs submitted, {} unique runs, {} memoized hits",
            self.submitted, self.misses, self.hits
        )
    }
}

/// How to construct an [`ExperimentSession`] beyond its platform: worker count and
/// persistent-store location.  [`from_env`](Self::from_env) (what
/// [`ExperimentSession::new`] uses) picks both up from `MP_THREADS`-family and
/// [`STORE_DIR_ENV`] variables; tests and daemons can set fields explicitly via
/// [`ExperimentSession::with_options`].
#[derive(Debug, Clone, Default)]
pub struct SessionOptions {
    /// Executor worker count override (`None` = [`executor::default_workers`]).
    pub workers: Option<usize>,
    /// Root of the persistent store (`None` = in-memory memoization only).
    pub store_dir: Option<PathBuf>,
}

impl SessionOptions {
    /// Options from the environment: default workers, and the persistent store at
    /// [`STORE_DIR_ENV`] when that variable is set and non-empty.
    pub fn from_env() -> Self {
        Self {
            workers: None,
            store_dir: std::env::var_os(STORE_DIR_ENV).filter(|v| !v.is_empty()).map(PathBuf::from),
        }
    }
}

/// One failed measurement job: the panic (real or
/// [fault-injected](crate::faults::maybe_panic)) that killed it, captured per job so
/// the rest of the batch still measures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// The job's content key (same key as the cache tiers use).
    pub key: u128,
    /// The panic message.
    pub message: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "measurement job {:032x} panicked: {}", self.key, self.message)
    }
}

impl std::error::Error for JobError {}

/// Where a session's cache-missing jobs actually execute.
///
/// By default a session simulates misses on its own platform via the in-process
/// executor; a session with a runner attached
/// ([`with_batch_runner`](ExperimentSession::with_batch_runner)) delegates them —
/// that is how `mp_service`'s `RemoteSession` routes misses over the wire to a shared
/// daemon while both cache tiers, dedup, stats and result assembly stay *this*
/// session's, byte-identical to in-process execution.
///
/// `jobs` and `keys` are parallel slices (one content key per job, as computed by
/// [`ExperimentSession::job_key`]); implementations must return exactly one result per
/// job, in order.  Transport or execution failures are per-job [`JobError`]s — a
/// runner, like the local path, must never panic the whole batch.
pub trait BatchRunner: Send + Sync {
    /// Executes the given jobs and returns one result per job, in job order.
    fn run_batch(
        &self,
        jobs: &[(&MicroBenchmark, CmpSmtConfig)],
        keys: &[u128],
    ) -> Vec<Result<Measurement, JobError>>;
}

/// Renders a caught panic payload (the two shapes `panic!` produces, plus a fallback).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A memoizing measurement session over a platform.
///
/// The session owns (or borrows, via the blanket `Platform for &P` impl) the platform
/// and a content-addressed cache of [`Measurement`]s.  All methods take `&self`; the
/// cache is internally synchronised, so a session can be shared across test threads
/// (e.g. behind a `OnceLock`).
pub struct ExperimentSession<P: Platform> {
    platform: P,
    workers: Option<usize>,
    store: Option<Store>,
    runner: Option<Box<dyn BatchRunner>>,
    cache: ShardedCache<Measurement>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    /// Total measured wall time and count of platform runs, feeding the executor's
    /// [`CostHint`](executor::CostHint): the session *measures* what its jobs cost and
    /// schedules the next batch accordingly (inline when a batch is too small to pay
    /// for pool dispatch, chunked when jobs are tiny).
    job_ns: AtomicU64,
    job_runs: AtomicU64,
}

/// What one measurement job is assumed to cost before the session has measured any:
/// simulations are milliseconds-scale, so the first batch of a session parallelizes.
const DEFAULT_JOB_COST_NS: u64 = 1_000_000;

impl<P: Platform> ExperimentSession<P> {
    /// Creates a session over a platform configured from the environment: the default
    /// worker count ([`executor::default_workers`], i.e. `MP_THREADS` or the host
    /// parallelism), and the persistent store at `MP_STORE_DIR` when set.
    pub fn new(platform: P) -> Self {
        Self::with_options(platform, SessionOptions::from_env())
    }

    /// Creates a session with explicit [`SessionOptions`].  A store directory that
    /// fails to open is a stderr warning and an in-memory-only session — persistence
    /// trouble must never take an experiment down.
    pub fn with_options(platform: P, options: SessionOptions) -> Self {
        let digest = platform.uarch().spec_digest;
        let store = options.store_dir.and_then(|root| Store::open_lenient(root, digest));
        Self {
            platform,
            workers: options.workers.map(|w| w.max(1)),
            store,
            runner: None,
            cache: ShardedCache::new(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            job_ns: AtomicU64::new(0),
            job_runs: AtomicU64::new(0),
        }
    }

    /// Overrides the executor worker count for this session.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Attaches (or replaces) the persistent store tier.
    pub fn with_store(mut self, store: Store) -> Self {
        self.store = Some(store);
        self
    }

    /// Delegates cache-missing jobs to a [`BatchRunner`] instead of simulating them on
    /// this process's executor.  Cache tiers, in-batch dedup, statistics and result
    /// ordering are unchanged — only tier 3 (execution) is rerouted.
    pub fn with_batch_runner(mut self, runner: impl BatchRunner + 'static) -> Self {
        self.runner = Some(Box::new(runner));
        self
    }

    /// The wrapped platform.
    pub fn platform(&self) -> &P {
        &self.platform
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// Prints the store's stderr summary line, if a store is attached.  Experiment
    /// binaries call this next to [`mp_telemetry::report`]; stdout stays
    /// store-independent by construction.
    pub fn report_store(&self) {
        if let Some(store) = &self.store {
            eprintln!("{}", store.summary_line());
        }
    }

    /// The worker count measurements run on.
    pub fn workers(&self) -> usize {
        self.workers.unwrap_or_else(executor::default_workers)
    }

    /// The cache key one `(benchmark, configuration)` job files under.
    ///
    /// The key covers the kernel content, the configuration and the platform's
    /// machine-spec digest ([`MicroArchitecture::spec_digest`]) — so two sessions over
    /// different backends never share (or, if their caches were merged, collide on) a
    /// measurement, while renamed copies of one kernel on one backend still dedupe.
    ///
    /// [`MicroArchitecture::spec_digest`]: mp_uarch::MicroArchitecture
    pub fn job_key(&self, benchmark: &MicroBenchmark, config: CmpSmtConfig) -> u128 {
        job_key(benchmark, config, self.platform.uarch().spec_digest)
    }

    /// The measured average wall time of one platform run, in nanoseconds
    /// ([`DEFAULT_JOB_COST_NS`] until the session has measured anything).
    ///
    /// This is the session's *measured* per-job cost estimate; it only ever influences
    /// scheduling (inline-vs-parallel, chunk sizing), never results.
    pub fn avg_job_ns(&self) -> u64 {
        let runs = self.job_runs.load(Ordering::Relaxed);
        match self.job_ns.load(Ordering::Relaxed).checked_div(runs) {
            None => DEFAULT_JOB_COST_NS,
            Some(avg) => avg.max(1),
        }
    }

    /// The cost hint the next batch is scheduled with.
    fn cost_hint(&self) -> executor::CostHint {
        executor::CostHint::per_item_ns(self.avg_job_ns())
    }

    /// Cumulative cache statistics.
    pub fn stats(&self) -> SessionStats {
        let hits = self.hits.load(Ordering::SeqCst);
        let misses = self.misses.load(Ordering::SeqCst);
        SessionStats { submitted: hits + misses, hits, misses }
    }

    /// Measures one benchmark/configuration pair, memoized.
    pub fn measure(&self, benchmark: &MicroBenchmark, config: CmpSmtConfig) -> Measurement {
        self.measure_batch(&[(benchmark, config)]).pop().expect("one job in, one result out")
    }

    /// Measures a batch of `(benchmark, configuration)` jobs and returns the
    /// measurements in job order.  Repeats (within the batch or against the session
    /// cache) are measured once; cache misses run in parallel on the executor.
    ///
    /// # Panics
    ///
    /// Re-raises the first per-job panic (after the whole batch has settled and every
    /// successful result is cached) — callers that must survive individual job
    /// failures use [`measure_batch_resilient`](Self::measure_batch_resilient).
    pub fn measure_batch(&self, jobs: &[(&MicroBenchmark, CmpSmtConfig)]) -> Vec<Measurement> {
        self.measure_batch_resilient(jobs)
            .into_iter()
            .map(|result| result.unwrap_or_else(|error| panic!("{error}")))
            .collect()
    }

    /// [`measure_batch`](Self::measure_batch) with per-job failure isolation: each
    /// result is `Ok(measurement)` or `Err` carrying the panic that killed *that job
    /// alone*.  Failed jobs are never cached (memory or disk) — a later submission
    /// retries them — and the worker pool, lease/latch handshake and memo cache all
    /// stay poison-free, so one bad kernel (or one injected fault) can never wedge
    /// later batches.
    pub fn measure_batch_resilient(
        &self,
        jobs: &[(&MicroBenchmark, CmpSmtConfig)],
    ) -> Vec<Result<Measurement, JobError>> {
        let _batch_span = mp_telemetry::span("session.measure_batch");
        let digest = self.platform.uarch().spec_digest;
        let keys: Vec<u128> = jobs.iter().map(|(b, c)| job_key(b, *c, digest)).collect();

        // Tier 1 — memory.  One sharded-cache probe per key: a hit is served straight
        // from its shard in a single lock acquisition, so concurrent submitters only
        // contend when their keys share a shard.  Unique misses collect in
        // first-appearance order (deterministic).  Disk probes and platform runs both
        // count as session "misses" so the stdout stats line is store-independent.
        let telemetry = mp_telemetry::enabled();
        let mut memo_hits = 0u64;
        let mut dedup_hits = 0u64;
        let mut settled: Vec<Option<Result<Measurement, JobError>>> = vec![None; jobs.len()];
        let mut to_probe: Vec<(u128, usize)> = Vec::new();
        {
            let mut queued: HashSet<u128> = HashSet::new();
            for (index, key) in keys.iter().enumerate() {
                if queued.contains(key) {
                    self.hits.fetch_add(1, Ordering::SeqCst);
                    dedup_hits += 1;
                } else if let Some(measurement) = self.cache.get(*key) {
                    self.hits.fetch_add(1, Ordering::SeqCst);
                    memo_hits += 1;
                    settled[index] = Some(Ok(measurement));
                } else {
                    queued.insert(*key);
                    self.misses.fetch_add(1, Ordering::SeqCst);
                    to_probe.push((*key, index));
                }
            }
        }
        if telemetry {
            // Register all three keys every batch so summaries always carry them.
            mp_telemetry::counter("session.hit", memo_hits);
            mp_telemetry::counter("session.dedup", dedup_hits);
            mp_telemetry::counter("session.miss", to_probe.len() as u64);
        }

        // Tier 2 — disk.  Probed serially in first-appearance order: loads are small
        // reads, and a fixed probe order keeps the fault-injection occurrence indices
        // (and therefore a replayed failure) independent of `MP_THREADS`.
        let mut to_measure: Vec<(u128, usize)> = Vec::new();
        if let Some(store) = &self.store {
            for (key, index) in to_probe {
                match store.load(key) {
                    Some(measurement) => {
                        self.cache.insert(key, measurement.clone());
                        settled[index] = Some(Ok(measurement));
                    }
                    None => to_measure.push((key, index)),
                }
            }
        } else {
            to_measure = to_probe;
        }

        // Tier 3 — execute.  Local sessions simulate on the in-process executor; a
        // session with a [`BatchRunner`] attached delegates instead (the remote-client
        // path).  Either way failures stay per-job and are never cached.
        let mut failures: HashMap<u128, JobError> = HashMap::new();
        if !to_measure.is_empty() {
            let measured = match &self.runner {
                Some(runner) => {
                    let subset: Vec<(&MicroBenchmark, CmpSmtConfig)> =
                        to_measure.iter().map(|&(_, index)| jobs[index]).collect();
                    let subset_keys: Vec<u128> = to_measure.iter().map(|&(key, _)| key).collect();
                    let mut results = runner.run_batch(&subset, &subset_keys);
                    if results.len() != to_measure.len() {
                        // A miscounting runner fails its whole batch rather than
                        // misaligning results with jobs.
                        let message = format!(
                            "batch runner returned {} results for {} jobs",
                            results.len(),
                            to_measure.len()
                        );
                        results = subset_keys
                            .iter()
                            .map(|&key| Err(JobError { key, message: message.clone() }))
                            .collect();
                    }
                    results
                }
                None => self.simulate_batch(jobs, &to_measure),
            };
            for (&(key, index), result) in to_measure.iter().zip(&measured) {
                match result {
                    Ok(measurement) => {
                        self.cache.insert(key, measurement.clone());
                        settled[index] = Some(Ok(measurement.clone()));
                    }
                    Err(error) => {
                        failures.insert(key, error.clone());
                        settled[index] = Some(Err(error.clone()));
                    }
                }
            }
            if telemetry {
                mp_telemetry::gauge("session.memo_entries", self.cache.len() as f64);
            }
            // Persist new measurements serially in first-appearance order
            // (deterministic fault occurrences, see above).
            if let Some(store) = &self.store {
                for ((key, _), result) in to_measure.iter().zip(&measured) {
                    if let Ok(measurement) = result {
                        store.save(*key, measurement);
                    }
                }
            }
        }

        // Only in-batch duplicates are still unsettled: resolve them by key against
        // whatever their first appearance produced.
        keys.iter()
            .zip(settled)
            .map(|(key, slot)| match slot {
                Some(result) => result,
                None => match self.cache.get(*key) {
                    Some(measurement) => Ok(measurement),
                    None => Err(failures
                        .get(key)
                        .expect("every job was measured, cached, or recorded as failed")
                        .clone()),
                },
            })
            .collect()
    }

    /// Tier 3's in-process path: simulates the cache-missing jobs on the executor.
    /// Panics are caught *inside* the parallel closure, so a failing job surfaces as a
    /// per-job `Err` while the executor never observes an unwinding task and the pool
    /// survives intact.
    fn simulate_batch(
        &self,
        jobs: &[(&MicroBenchmark, CmpSmtConfig)],
        to_measure: &[(u128, usize)],
    ) -> Vec<Result<Measurement, JobError>> {
        executor::par_map_with_workers_and_cost(
            self.workers(),
            self.cost_hint(),
            to_measure,
            |&(key, index)| {
                let (benchmark, config) = jobs[index];
                // Per-job wall time is always measured (two clock reads against a
                // simulation run): it feeds the cost hint that decides whether the
                // *next* batch is worth farming out at all, and at what chunk size.
                let start = std::time::Instant::now();
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    faults::maybe_panic("session.job");
                    self.platform.run(benchmark, config)
                }));
                match outcome {
                    Ok(measurement) => {
                        let wall_ns = start.elapsed().as_nanos() as u64;
                        self.job_ns.fetch_add(wall_ns, Ordering::Relaxed);
                        self.job_runs.fetch_add(1, Ordering::Relaxed);
                        if mp_telemetry::enabled() {
                            mp_telemetry::histogram("session.job_wall_ns", wall_ns);
                            mp_telemetry::histogram("session.job_sim_cycles", measurement.cycles());
                        }
                        Ok(measurement)
                    }
                    Err(payload) => {
                        mp_telemetry::counter("session.job_failed", 1);
                        Err(JobError { key, message: panic_message(payload.as_ref()) })
                    }
                }
            },
        )
    }

    /// Runs a plan and returns one labelled sample per job, in plan order.
    pub fn run(&self, plan: &ExperimentPlan) -> Vec<(WorkloadSample, SampleKind)> {
        let jobs: Vec<(&MicroBenchmark, CmpSmtConfig)> =
            plan.jobs().iter().map(|job| (&job.benchmark, job.config)).collect();
        let measurements = self.measure_batch(&jobs);
        plan.jobs()
            .iter()
            .zip(&measurements)
            .map(|(job, measurement)| {
                (WorkloadSample::from_measurement(&job.name, measurement), job.kind)
            })
            .collect()
    }

    /// Runs the per-instruction bootstrap through the session: generation is
    /// declarative ([`Bootstrap::jobs`]), the characterisation loops are measured in
    /// parallel with memoization, and the records are assembled in job order
    /// ([`Bootstrap::assemble`]) — output is identical to the serial
    /// [`Bootstrap::run`].
    ///
    /// # Errors
    ///
    /// Returns the first benchmark generation failure.
    pub fn bootstrap(
        &self,
        options: BootstrapOptions,
    ) -> Result<(InstrPropsTable, Vec<BootstrapRecord>), PassError> {
        let _span = mp_telemetry::span("session.bootstrap");
        let driver = Bootstrap::new(&self.platform).with_options(options);
        let jobs = driver.jobs()?;
        let flat: Vec<(&MicroBenchmark, CmpSmtConfig)> = jobs
            .iter()
            .flat_map(|job| [(&job.chained, job.config), (&job.independent, job.config)])
            .collect();
        let mut measured = self.measure_batch(&flat).into_iter();
        let pairs: Vec<(Measurement, Measurement)> = jobs
            .iter()
            .map(|_| {
                (
                    measured.next().expect("two measurements per job"),
                    measured.next().expect("two measurements per job"),
                )
            })
            .collect();
        Ok(driver.assemble(&jobs, &pairs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microprobe::platform::SimPlatform;
    use microprobe::prelude::*;
    use mp_uarch::SmtMode;

    fn tiny_benchmark(name: &str, seed: u64) -> MicroBenchmark {
        let arch = mp_uarch::power7();
        let computes = arch.isa.compute_instructions();
        let mut synth = Synthesizer::new(arch).with_name_prefix(name).with_seed(seed);
        synth.add_pass(SkeletonPass::endless_loop(24));
        synth.add_pass(InstructionMixPass::uniform(computes));
        synth.synthesize().expect("tiny benchmark synthesizes")
    }

    #[test]
    fn repeats_are_measured_once_and_relabelled() {
        let session = ExperimentSession::new(SimPlatform::power7_fast()).with_workers(2);
        let bench = tiny_benchmark("t", 1);
        let config = CmpSmtConfig::new(1, SmtMode::Smt1);

        let mut plan = ExperimentPlan::new();
        plan.push("first", bench.clone(), config, SampleKind::MicroArch);
        plan.push("again", bench.clone(), config, SampleKind::Random);
        let samples = session.run(&plan);

        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].0.name, "first");
        assert_eq!(samples[1].0.name, "again");
        assert_eq!(samples[0].0.power, samples[1].0.power, "same content, same measurement");
        assert_eq!(samples[1].1, SampleKind::Random, "labels follow the plan, not the cache");
        let stats = session.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);

        // A second submission of the same plan is answered entirely from the cache.
        let replay = session.run(&plan);
        assert_eq!(replay, samples);
        assert_eq!(session.stats().misses, 1);
        assert_eq!(session.stats().hits, 3);
    }

    #[test]
    fn renamed_copies_of_the_same_kernel_dedupe() {
        let session = ExperimentSession::new(SimPlatform::power7_fast());
        let a = tiny_benchmark("alpha", 7);
        // Same seed + passes => identical kernel content; only the name differs.
        let renamed = tiny_benchmark("beta", 7);
        assert_ne!(a.name(), renamed.name());
        let config = CmpSmtConfig::new(2, SmtMode::Smt2);
        assert_eq!(session.job_key(&a, config), session.job_key(&renamed, config));
        assert_ne!(
            session.job_key(&a, config),
            session.job_key(&a, CmpSmtConfig::new(2, SmtMode::Smt4)),
            "the configuration is part of the content"
        );
        assert_ne!(
            session.job_key(&a, config),
            session.job_key(&tiny_benchmark("alpha", 8), config),
            "different kernel bodies do not collide"
        );
    }

    #[test]
    fn the_backend_is_part_of_the_job_key() {
        let p7 = ExperimentSession::new(SimPlatform::power7_fast());
        let p8 = ExperimentSession::new(SimPlatform::new(
            mp_sim::ChipSim::new(mp_uarch::power8()).with_options(mp_sim::SimOptions::fast()),
        ));
        let bench = tiny_benchmark("portable", 3);
        let config = CmpSmtConfig::new(1, SmtMode::Smt1);

        assert_ne!(
            p7.job_key(&bench, config),
            p8.job_key(&bench, config),
            "the same kernel on two backends files under two cache entries"
        );

        // And the kernel-level fingerprint is backend-scoped the same way.
        let kernel = bench.kernel();
        assert_ne!(
            kernel.content_hash_with(p7.platform().uarch().spec_digest),
            kernel.content_hash_with(p8.platform().uarch().spec_digest),
        );

        // Each session measures the kernel on its own machine: one miss per backend,
        // and the measurements genuinely differ.
        let m7 = p7.measure(&bench, config);
        let m8 = p8.measure(&bench, config);
        assert_eq!(p7.stats().misses, 1);
        assert_eq!(p8.stats().misses, 1);
        assert_ne!(m7.average_power(), m8.average_power());
    }

    #[test]
    fn plan_results_are_in_plan_order_for_any_worker_count() {
        let platform = SimPlatform::power7_fast();
        let benches: Vec<MicroBenchmark> =
            (0..4).map(|i| tiny_benchmark(&format!("b{i}"), i)).collect();
        let configs = [CmpSmtConfig::new(1, SmtMode::Smt1), CmpSmtConfig::new(2, SmtMode::Smt2)];

        let mut plan = ExperimentPlan::new();
        for (i, bench) in benches.iter().enumerate() {
            plan.sweep(format!("b{i}"), bench, &configs, SampleKind::Random);
        }

        let reference: Vec<(WorkloadSample, SampleKind)> = plan
            .jobs()
            .iter()
            .map(|job| {
                let m = platform.run(&job.benchmark, job.config);
                (WorkloadSample::from_measurement(&job.name, &m), job.kind)
            })
            .collect();

        for workers in [1usize, 3, 8] {
            let session = ExperimentSession::new(SimPlatform::power7_fast()).with_workers(workers);
            assert_eq!(session.run(&plan), reference, "workers={workers}");
        }
    }

    #[test]
    fn session_bootstrap_matches_the_serial_driver() {
        let platform = SimPlatform::power7_fast();
        let options = BootstrapOptions {
            loop_instructions: 48,
            config: CmpSmtConfig::new(1, SmtMode::Smt1),
            include: Some(vec!["add".to_owned(), "mulld".to_owned(), "lbz".to_owned()]),
        };
        let (serial_table, serial_records) = Bootstrap::new(&platform)
            .with_options(options.clone())
            .run()
            .expect("serial bootstrap succeeds");

        let session = ExperimentSession::new(&platform).with_workers(4);
        let (table, records) = session.bootstrap(options).expect("session bootstrap succeeds");
        assert_eq!(records, serial_records);
        for record in &records {
            let a = table.get(&record.mnemonic).expect("bootstrapped");
            let b = serial_table.get(&record.mnemonic).expect("bootstrapped");
            assert_eq!(a.epi, b.epi);
            assert_eq!(a.measured_ipc, b.measured_ipc);
            assert_eq!(a.measured_latency, b.measured_latency);
        }
    }

    #[test]
    fn an_injected_job_panic_fails_only_its_own_entry() {
        let _guard = crate::faults::tests::serial();
        let ambient = faults::plan();
        let session = ExperimentSession::new(SimPlatform::power7_fast()).with_workers(4);
        let benches: Vec<MicroBenchmark> =
            (0..6).map(|i| tiny_benchmark(&format!("p{i}"), 100 + i)).collect();
        let config = CmpSmtConfig::new(1, SmtMode::Smt1);
        let jobs: Vec<(&MicroBenchmark, CmpSmtConfig)> =
            benches.iter().map(|b| (b, config)).collect();

        // ~half the jobs panic, reproducibly.
        faults::set_plan(Some(faults::FaultPlan {
            seed: 12,
            job_panic: 0.5,
            ..faults::FaultPlan::default()
        }));
        let results = session.measure_batch_resilient(&jobs);
        faults::set_plan(ambient);

        assert_eq!(results.len(), jobs.len());
        let failed: Vec<usize> =
            results.iter().enumerate().filter(|(_, r)| r.is_err()).map(|(i, _)| i).collect();
        assert!(!failed.is_empty(), "seed 12 at rate 0.5 injects at least one panic over 6 jobs");
        assert!(failed.len() < jobs.len(), "and at least one job survives");
        for index in &failed {
            let error = results[*index].as_ref().expect_err("failed job");
            assert!(error.message.contains("injected fault"), "{error}");
            assert!(error.message.contains("seed=12"), "panics carry their replay seed: {error}");
        }

        // The session (cache, stats, pool) survives: resubmitting with injection off
        // measures the failed jobs fresh and hits the cache for the survivors.
        let healed = session.measure_batch_resilient(&jobs);
        assert!(healed.iter().all(Result::is_ok), "every job heals on retry");
        let stats = session.stats();
        assert_eq!(stats.submitted, 12);
        assert_eq!(stats.hits, jobs.len() - failed.len(), "survivors were cached");

        // And measure_batch (the panicking wrapper) still works afterwards.
        let direct = session.measure_batch(&jobs);
        assert_eq!(direct.len(), jobs.len());
    }

    #[test]
    fn a_store_backed_session_answers_a_fresh_session_from_disk() {
        let dir = crate::store::tests::TempDir::new("session-tier");
        let bench = tiny_benchmark("persist", 5);
        let config = CmpSmtConfig::new(2, SmtMode::Smt2);

        let first = ExperimentSession::new(SimPlatform::power7_fast())
            .with_workers(2)
            .with_store(Store::open(dir.path(), digest_of()).expect("store opens"));
        let original = first.measure(&bench, config);
        assert_eq!(first.stats().misses, 1);
        assert_eq!(first.store().expect("attached").stats().writes, 1);
        let cold_line = first.stats().summary_line();
        drop(first);

        // A brand-new session (fresh memory tier) over the same store answers from
        // disk: no platform run, yet stats still call it a "unique run" so the stdout
        // summary is identical to the cold run's.
        let second = ExperimentSession::new(SimPlatform::power7_fast())
            .with_workers(2)
            .with_store(Store::open(dir.path(), digest_of()).expect("store reopens"));
        let replayed = second.measure(&bench, config);
        assert_eq!(replayed, original, "disk round-trip is the identity");
        let stats = second.stats();
        assert_eq!((stats.misses, stats.hits), (1, 0), "disk hits count as unique runs");
        let store_stats = second.store().expect("attached").stats();
        assert_eq!((store_stats.hits, store_stats.misses), (1, 0), "served purely from disk");
        assert_eq!(
            stats.summary_line(),
            cold_line,
            "cold and warm runs print the identical stdout stats line"
        );
    }

    fn digest_of() -> u128 {
        SimPlatform::power7_fast().uarch().spec_digest
    }
}
