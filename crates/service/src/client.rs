//! The client side: a [`BatchRunner`] that ships cache misses to a daemon, and
//! [`RemoteSession`], the drop-in session wrapper the experiment driver uses in
//! client mode.
//!
//! The split of responsibilities is what makes client-mode stdout byte-identical to
//! in-process runs *by construction*: `RemoteSession` is a plain
//! [`ExperimentSession`] — same content keys, same memo cache, same dedup, same
//! stats counting, same result ordering — whose tier-3 execution hook happens to be a
//! TCP round trip instead of the local executor.  Nothing downstream of the session
//! can tell the difference.

use std::net::TcpStream;
use std::sync::Mutex;

use microprobe::ir::MicroBenchmark;
use microprobe::platform::Platform;
use mp_runtime::{poison, BatchRunner, ExperimentSession, JobError, SessionOptions};
use mp_sim::Measurement;
use mp_uarch::CmpSmtConfig;

use crate::protocol::{self, DaemonStats, FrameError, MessageType, MAX_JOBS_PER_FRAME};

/// Environment variable holding the daemon address (`host:port`).  When set and
/// non-empty, the experiment driver runs every backend session in client mode.
pub const SERVICE_ADDR_ENV: &str = "MP_SERVICE_ADDR";

/// A [`BatchRunner`] that executes batches on a measurement daemon over TCP.
///
/// Connections are pooled and reused across batches; a transport failure retries the
/// chunk once on a fresh connection before surfacing per-job errors (a daemon restart
/// between batches therefore goes unnoticed).  Execution failures reported by the
/// daemon map straight back to per-job [`JobError`]s, exactly like local panics.
pub struct RemoteRunner {
    addr: String,
    digest: u128,
    pool: Mutex<Vec<TcpStream>>,
}

impl RemoteRunner {
    /// Connects to the daemon at `addr` and verifies its machine-spec digest matches
    /// `digest` (the client platform's).  The handshake connection is kept for reuse.
    ///
    /// # Errors
    ///
    /// Returns a description when the daemon is unreachable, speaks a different
    /// protocol, or serves a different machine spec.
    pub fn connect(addr: impl Into<String>, digest: u128) -> Result<Self, String> {
        let runner = Self { addr: addr.into(), digest, pool: Mutex::new(Vec::new()) };
        let stats = runner.daemon_stats()?;
        if stats.digest != digest {
            return Err(format!(
                "daemon at {} serves machine-spec digest {:032x}, this client is built for \
                 {digest:032x} — run both from the same build",
                runner.addr, stats.digest
            ));
        }
        Ok(runner)
    }

    /// The daemon address this runner dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn checkout(&self) -> std::io::Result<TcpStream> {
        if let Some(stream) = poison::lock(&self.pool).pop() {
            return Ok(stream);
        }
        TcpStream::connect(&*self.addr)
    }

    fn checkin(&self, stream: TcpStream) {
        poison::lock(&self.pool).push(stream);
    }

    /// One request/reply round trip on a pooled connection, with a single retry on a
    /// fresh connection when the transport fails (stale pooled socket, daemon
    /// restart).  Returns the reply frame.
    fn rpc(&self, message: MessageType, payload: &[u8]) -> Result<(MessageType, Vec<u8>), String> {
        let mut fresh = false;
        loop {
            let attempt = self
                .checkout()
                .map_err(|error| format!("connect to {}: {error}", self.addr))
                .and_then(|mut stream| {
                    protocol::write_frame(&mut stream, message, payload)
                        .map_err(|error| format!("send to {}: {error}", self.addr))?;
                    match protocol::read_frame(&mut stream) {
                        Ok(reply) => {
                            self.checkin(stream);
                            Ok(reply)
                        }
                        Err(FrameError::Closed) => {
                            Err(format!("daemon at {} closed the connection", self.addr))
                        }
                        Err(error) => Err(format!("receive from {}: {error}", self.addr)),
                    }
                });
            match attempt {
                Ok(reply) => return Ok(reply),
                Err(error) if !fresh => {
                    // Drop every pooled socket — they all predate whatever broke —
                    // and retry exactly once on a fresh dial.
                    poison::lock(&self.pool).clear();
                    fresh = true;
                    let _ = error;
                }
                Err(error) => return Err(error),
            }
        }
    }

    /// Fetches the daemon's identity and cumulative counters.
    ///
    /// # Errors
    ///
    /// Returns a description of the transport or protocol failure.
    pub fn daemon_stats(&self) -> Result<DaemonStats, String> {
        match self.rpc(MessageType::StatsRequest, &[])? {
            (MessageType::StatsReply, payload) => protocol::decode_stats(&payload),
            (MessageType::ErrorReply, payload) => Err(protocol::decode_error(&payload)?),
            (other, _) => Err(format!("unexpected reply {other:?} to a stats request")),
        }
    }

    /// Asks the daemon to shut down and waits for the acknowledgement.
    ///
    /// # Errors
    ///
    /// Returns a description of the transport or protocol failure.
    pub fn shutdown_daemon(&self) -> Result<(), String> {
        match self.rpc(MessageType::Shutdown, &[])? {
            (MessageType::ShutdownAck, _) => Ok(()),
            (MessageType::ErrorReply, payload) => Err(protocol::decode_error(&payload)?),
            (other, _) => Err(format!("unexpected reply {other:?} to a shutdown request")),
        }
    }

    /// Runs one chunk (≤ [`MAX_JOBS_PER_FRAME`] jobs) through the daemon.
    fn run_chunk(
        &self,
        jobs: &[(&MicroBenchmark, CmpSmtConfig)],
        keys: &[u128],
    ) -> Vec<Result<Measurement, JobError>> {
        let fail_all = |message: &str| -> Vec<Result<Measurement, JobError>> {
            keys.iter().map(|&key| Err(JobError { key, message: message.to_owned() })).collect()
        };
        let payload = protocol::encode_submit_batch(self.digest, jobs, keys);
        let reply = match self.rpc(MessageType::SubmitBatch, &payload) {
            Ok(reply) => reply,
            Err(error) => return fail_all(&error),
        };
        let results = match reply {
            (MessageType::Results, payload) => match protocol::decode_results(&payload) {
                Ok(results) => results,
                Err(error) => return fail_all(&format!("undecodable results: {error}")),
            },
            (MessageType::ErrorReply, payload) => {
                let message = protocol::decode_error(&payload)
                    .unwrap_or_else(|error| format!("undecodable error reply: {error}"));
                return fail_all(&format!("daemon refused the batch: {message}"));
            }
            (other, _) => return fail_all(&format!("unexpected reply {other:?} to a batch")),
        };
        if results.len() != keys.len() {
            return fail_all(&format!(
                "daemon returned {} results for {} jobs",
                results.len(),
                keys.len()
            ));
        }
        results
            .into_iter()
            .zip(keys)
            .map(|(result, &key)| {
                if result.key != key {
                    return Err(JobError {
                        key,
                        message: format!(
                            "daemon result key {:032x} does not match job key {key:032x}",
                            result.key
                        ),
                    });
                }
                result.outcome.map_err(|message| JobError { key, message })
            })
            .collect()
    }
}

impl BatchRunner for RemoteRunner {
    fn run_batch(
        &self,
        jobs: &[(&MicroBenchmark, CmpSmtConfig)],
        keys: &[u128],
    ) -> Vec<Result<Measurement, JobError>> {
        let _span = mp_telemetry::span("service.client_batch");
        let mut results = Vec::with_capacity(jobs.len());
        for (job_chunk, key_chunk) in
            jobs.chunks(MAX_JOBS_PER_FRAME).zip(keys.chunks(MAX_JOBS_PER_FRAME))
        {
            results.extend(self.run_chunk(job_chunk, key_chunk));
        }
        results
    }
}

/// An [`ExperimentSession`] whose cache misses execute on a measurement daemon.
///
/// Everything observable — keys, dedup, stats, ordering, the stdout summary line — is
/// the inner session's; only tier-3 execution crosses the wire.  The local store tier
/// is disabled (persistence lives with the daemon, which would otherwise race N
/// client processes on one directory).
pub struct RemoteSession<P: Platform> {
    session: ExperimentSession<P>,
}

impl<P: Platform> RemoteSession<P> {
    /// Connects to the daemon at `addr`, verifying it serves the same machine spec as
    /// `platform`, and wraps a session routing misses to it.
    ///
    /// # Errors
    ///
    /// Returns a description when the daemon is unreachable or incompatible.
    pub fn connect(platform: P, addr: impl Into<String>) -> Result<Self, String> {
        let digest = platform.uarch().spec_digest;
        let runner = RemoteRunner::connect(addr, digest)?;
        let options = SessionOptions { workers: None, store_dir: None };
        let session = ExperimentSession::with_options(platform, options).with_batch_runner(runner);
        Ok(Self { session })
    }

    /// The wrapped session (also reachable through `Deref`).
    pub fn session(&self) -> &ExperimentSession<P> {
        &self.session
    }

    /// Unwraps into the plain session — for drivers that hold an
    /// [`ExperimentSession`] by value regardless of where execution happens.
    pub fn into_inner(self) -> ExperimentSession<P> {
        self.session
    }
}

impl<P: Platform> std::ops::Deref for RemoteSession<P> {
    type Target = ExperimentSession<P>;

    fn deref(&self) -> &Self::Target {
        &self.session
    }
}
