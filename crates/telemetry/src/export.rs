//! Exports: human summary, JSON lines, and Chrome trace-event JSON.
//!
//! Three views of one [`Aggregate`](crate::registry::Aggregate):
//!
//! * [`summary`] — the `# Telemetry` block every experiment binary prints to **stderr**
//!   (stderr so figure stdout stays byte-identical across worker counts while the
//!   telemetry — steal counts, wall times — legitimately varies);
//! * [`write_json_lines`] — one JSON object per metric, appended to a file
//!   (the `MP_BENCH_JSON` precedent: machine-readable, trivially greppable);
//! * [`chrome_trace_json`] — the Chrome trace-event array format; load the file in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing` to see the spans on a
//!   per-thread timeline.

use std::fmt::Write as _;
use std::io::Write as _;

use crate::registry::{Aggregate, GaugeStat, Histogram, Key};

/// Environment variable naming the JSON-lines output file.
pub const JSON_ENV: &str = "MP_TELEMETRY_JSON";

/// Environment variable naming the Chrome-trace output file.
pub const TRACE_ENV: &str = "MP_TELEMETRY_TRACE";

/// Formats a nanosecond quantity for humans (`412ns`, `3.1us`, `2.4ms`, `1.7s`).
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// One metric name's `(index, value)` pairs, in key order (plain key first).
type Series<T> = Vec<(Option<u32>, T)>;

/// Groups indexed series under their base name.
fn grouped<'a, V, T>(
    entries: impl Iterator<Item = (&'a Key, &'a V)>,
    value: impl Fn(&V) -> T,
) -> std::collections::BTreeMap<&'static str, Series<T>>
where
    V: 'a,
{
    let mut out: std::collections::BTreeMap<&'static str, Series<T>> =
        std::collections::BTreeMap::new();
    for (key, v) in entries {
        out.entry(key.name).or_default().push((key.index, value(v)));
    }
    out
}

/// The multi-line `# Telemetry` summary block (every line `#`-prefixed, so it can share
/// a stream with figure output without breaking text-table consumers).
pub fn summary(agg: &Aggregate) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Telemetry — {} counters, {} gauges, {} spans, {} histograms",
        agg.counters.len(),
        agg.gauges.len(),
        agg.spans.len(),
        agg.histograms.len()
    );

    for (name, series) in grouped(agg.counters.iter(), |v: &u64| *v) {
        let total: u64 = series.iter().map(|(_, v)| v).sum();
        let _ = write!(out, "#   counter {name} = {total}");
        if series.len() > 1 || series.first().is_some_and(|(i, _)| i.is_some()) {
            let parts: Vec<String> =
                series.iter().filter_map(|(i, v)| i.map(|i| format!("w{i}={v}"))).collect();
            if !parts.is_empty() {
                let _ = write!(out, " ({})", parts.join(" "));
            }
        }
        let _ = writeln!(out);
    }

    for (key, gauge) in &agg.gauges {
        let _ = writeln!(
            out,
            "#   gauge {key} = {:.3} (min {:.3}, max {:.3}, {} sets)",
            gauge.last, gauge.min, gauge.max, gauge.count
        );
    }

    for (name, span) in &agg.spans {
        let d = &span.durations;
        let _ = writeln!(
            out,
            "#   span {name} — {} calls, {} total, mean {}, p50<={}, p90<={}, max {}",
            d.count,
            fmt_ns(d.sum),
            fmt_ns(d.mean() as u64),
            fmt_ns(d.quantile_upper_bound(0.5)),
            fmt_ns(d.quantile_upper_bound(0.9)),
            fmt_ns(d.max),
        );
    }

    for (key, hist) in &agg.histograms {
        let _ = writeln!(
            out,
            "#   hist {key} — n={}, mean {:.1}, p50<={}, p90<={}, min {}, max {}",
            hist.count,
            hist.mean(),
            hist.quantile_upper_bound(0.5),
            hist.quantile_upper_bound(0.9),
            if hist.count == 0 { 0 } else { hist.min },
            hist.max,
        );
    }

    if agg.dropped_trace_events > 0 {
        let _ = writeln!(
            out,
            "#   note: {} trace events dropped past the {} cap",
            agg.dropped_trace_events,
            crate::registry::MAX_TRACE_EVENTS
        );
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn hist_json(h: &Histogram) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"mean\":{:.3},\"min\":{},\"max\":{},\"p50_ub\":{},\"p90_ub\":{}}}",
        h.count,
        h.sum,
        h.mean(),
        if h.count == 0 { 0 } else { h.min },
        h.max,
        h.quantile_upper_bound(0.5),
        h.quantile_upper_bound(0.9)
    )
}

fn gauge_json(g: &GaugeStat) -> String {
    format!(
        "{{\"last\":{:.6},\"min\":{:.6},\"max\":{:.6},\"sets\":{}}}",
        g.last, g.min, g.max, g.count
    )
}

/// Writes one JSON object per metric (JSON lines) to `out`.
///
/// Each line carries a `kind` (`counter` / `gauge` / `span` / `histogram`), the metric
/// `name` (indexed series formatted as `name[i]`), and the kind-specific payload.
///
/// # Errors
///
/// Propagates I/O errors of `out`.
pub fn write_json_lines(agg: &Aggregate, out: &mut dyn std::io::Write) -> std::io::Result<()> {
    for (key, value) in &agg.counters {
        writeln!(
            out,
            "{{\"kind\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
            json_escape(&key.to_string())
        )?;
    }
    for (key, gauge) in &agg.gauges {
        writeln!(
            out,
            "{{\"kind\":\"gauge\",\"name\":\"{}\",\"gauge\":{}}}",
            json_escape(&key.to_string()),
            gauge_json(gauge)
        )?;
    }
    for (name, span) in &agg.spans {
        writeln!(
            out,
            "{{\"kind\":\"span\",\"name\":\"{}\",\"durations_ns\":{}}}",
            json_escape(name),
            hist_json(&span.durations)
        )?;
    }
    for (key, hist) in &agg.histograms {
        writeln!(
            out,
            "{{\"kind\":\"histogram\",\"name\":\"{}\",\"values\":{}}}",
            json_escape(&key.to_string()),
            hist_json(hist)
        )?;
    }
    Ok(())
}

/// Renders the Chrome trace-event JSON document (the array format Perfetto and
/// `chrome://tracing` both load).
///
/// Spans become complete (`"ph":"X"`) events with microsecond timestamps relative to
/// the process epoch; thread labels become `thread_name` metadata events so executor
/// workers show up as named lanes.
pub fn chrome_trace_json(agg: &Aggregate) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("  ");
        out.push_str(&line);
    };

    for (tid, label) in &agg.thread_labels {
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(label)
            ),
            &mut out,
        );
    }
    for event in &agg.trace {
        push(
            format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"cat\":\"mp\",\"pid\":1,\"tid\":{},\
                 \"ts\":{:.3},\"dur\":{:.3}}}",
                json_escape(event.name),
                event.tid,
                event.start_ns as f64 / 1e3,
                event.dur_ns as f64 / 1e3
            ),
            &mut out,
        );
    }
    out.push_str("\n]\n");
    out
}

/// End-of-process reporting for binaries: when telemetry is enabled, prints the
/// [`summary`] to stderr and honours the [`JSON_ENV`] (append JSON lines) and
/// [`TRACE_ENV`] (write Chrome trace) output files.  A no-op when disabled, so every
/// binary can call it unconditionally.
pub fn report() {
    if !crate::enabled() {
        return;
    }
    let agg = crate::registry::snapshot();
    eprint!("{}", summary(&agg));
    if let Ok(path) = std::env::var(JSON_ENV) {
        if !path.is_empty() {
            match std::fs::OpenOptions::new().create(true).append(true).open(&path) {
                Ok(mut file) => {
                    if let Err(err) = write_json_lines(&agg, &mut file) {
                        eprintln!("# Telemetry: failed writing JSON lines to {path}: {err}");
                    }
                }
                Err(err) => eprintln!("# Telemetry: cannot open {path}: {err}"),
            }
        }
    }
    if let Ok(path) = std::env::var(TRACE_ENV) {
        if !path.is_empty() {
            if let Err(err) = std::fs::write(&path, chrome_trace_json(&agg)) {
                eprintln!("# Telemetry: failed writing Chrome trace to {path}: {err}");
            }
        }
    }
    let _ = std::io::stderr().flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{SpanStat, TraceEvent};

    fn sample_aggregate() -> Aggregate {
        let mut agg = Aggregate::default();
        agg.counters.insert(Key { name: "session.hit", index: None }, 7);
        agg.counters.insert(Key { name: "executor.steal", index: Some(0) }, 2);
        agg.counters.insert(Key { name: "executor.steal", index: Some(1) }, 5);
        let mut g = GaugeStat { last: 3.0, max: 9.0, min: 1.0, count: 4 };
        g.last = 3.0;
        agg.gauges.insert(Key { name: "session.memo_entries", index: None }, g);
        let mut span = SpanStat::default();
        span.durations.record(1_500);
        span.durations.record(3_000);
        agg.spans.insert("sim.cycle_loop", span);
        let mut hist = Histogram::default();
        hist.record(64);
        agg.histograms.insert(Key { name: "executor.task_ns", index: None }, hist);
        agg.trace.push(TraceEvent {
            name: "sim.cycle_loop",
            start_ns: 2_000,
            dur_ns: 1_500,
            tid: 1,
        });
        agg.thread_labels.insert(1, "worker-0".to_owned());
        agg
    }

    #[test]
    fn summary_totals_indexed_counters_and_shows_the_breakdown() {
        let text = summary(&sample_aggregate());
        assert!(text.starts_with("# Telemetry — "), "{text}");
        assert!(text.contains("counter executor.steal = 7 (w0=2 w1=5)"), "{text}");
        assert!(text.contains("counter session.hit = 7"), "{text}");
        assert!(text.contains("span sim.cycle_loop — 2 calls"), "{text}");
        assert!(text.lines().all(|l| l.starts_with('#')), "all lines #-prefixed: {text}");
    }

    #[test]
    fn json_lines_are_one_valid_object_per_metric() {
        let mut buf = Vec::new();
        write_json_lines(&sample_aggregate(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 6, "{text}");
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"kind\":"), "{line}");
        }
        assert!(text.contains("\"name\":\"executor.steal[1]\",\"value\":5"), "{text}");
    }

    #[test]
    fn chrome_trace_is_an_array_of_events_with_thread_names() {
        let json = chrome_trace_json(&sample_aggregate());
        assert!(json.trim_start().starts_with('['), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"M\""), "{json}");
        assert!(json.contains("\"name\":\"worker-0\""), "{json}");
        assert!(json.contains("\"ts\":2.000"), "ns -> us: {json}");
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(412), "412ns");
        assert_eq!(fmt_ns(3_100), "3.1us");
        assert_eq!(fmt_ns(2_400_000), "2.4ms");
        assert_eq!(fmt_ns(1_700_000_000), "1.70s");
    }
}
