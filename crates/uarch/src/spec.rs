//! Declarative machine (micro-architecture) specifications.
//!
//! The counterpart of [`mp_isa::spec`] for the machine side: `specs/<backend>.uarch`
//! describes everything a [`MicroArchitecture`] holds — pipeline widths, cache
//! hierarchy and shared-uncore geometry, SMT modes, floorplan, the latency/throughput
//! derivation rates, the (hidden) energy model parameters and the PMC mapping — in a
//! small line-oriented text format.  [`backend`] loads an embedded spec by name,
//! resolves its ISA through [`mp_isa::spec::load_isa`], derives the per-instruction
//! property table and stamps the result with a digest of both spec texts so
//! measurement memoization can tell backends apart.
//!
//! # File format
//!
//! One record per line; `#` starts a comment.  All records are mandatory except `pmc`
//! (which defaults missing counters to their generic names) and `iprop`:
//!
//! ```text
//! machine "POWER7"
//! isa power7
//! frequency-ghz 3
//! max-cores 8
//! smt 1 2 4
//! pipes dispatch=6 completion=6 fxu=2 lsu=2 vsu=2 dfu=1 bru=1
//! cache l1 capacity=32768 line=128 ways=8 latency=2
//! memory latency=220
//! uncore-l3 capacity=33554432 line=128 ways=8 latency=27
//! uncore-port cycles=2 queue=8
//! floorplan ifu=0.16 isu=0.18 ...
//! latency simple=1 simple-fp=2 medium=4 medium-fp=6 long=13 very-long=33 memory=2 control=1
//! throughput sync=30 prefetch=1.2 ... default=1
//! energy idle=100 uncore=40 ...
//! energy-unit-base fxu=0.5 lsu=0.65 vsu=0.9 dfu=1 bru=0.3
//! energy-unit-wake fxu=0.7 lsu=0.8 vsu=1.2 dfu=0.8 bru=0.3
//! energy-mem l1=0.6 l2=2.2 l3=5.5 mem=13
//! pmc cycles=PM_RUN_CYC
//! iprop dcbtst latency=2 rt=1.5     # optional per-mnemonic overrides
//! ```
//!
//! The `latency` and `throughput` records parameterize the same derivation rules the
//! original hand-coded POWER7 tables used; `iprop` records override the derived values
//! for individual mnemonics (validated against the ISA, with line/column diagnostics
//! for unknown mnemonics).

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use mp_isa::spec::{lex, spec_digest, SpecError, Tok};
use mp_isa::{InstrFlags, InstructionDef, Isa, IssueClass, LatencyClass, Unit};

use crate::cache::{CacheGeometry, MemLevel, MemoryHierarchy, UncoreGeometry};
use crate::config::SmtMode;
use crate::counters::CounterId;
use crate::energy::EnergyParams;
use crate::iprops::{InstrProps, InstrPropsTable};
use crate::power7::MicroArchitecture;
use crate::units::{CorePipes, FloorplanEntry};

/// The embedded POWER7 machine specification (`specs/power7.uarch`).
pub const POWER7_UARCH_SPEC: &str = include_str!("../../../specs/power7.uarch");

/// The embedded POWER8-like machine specification (`specs/power8.uarch`).
pub const POWER8_UARCH_SPEC: &str = include_str!("../../../specs/power8.uarch");

/// Embedded machine specification sources, by backend name.
const MACHINE_SOURCES: &[(&str, &str)] =
    &[("power7", POWER7_UARCH_SPEC), ("power8", POWER8_UARCH_SPEC)];

/// Latency derivation rates: cycles per latency class, with float/vector variants for
/// the short classes (the `latency` record).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyRates {
    /// Simple integer operations.
    pub simple: u32,
    /// Simple float/vector operations.
    pub simple_fp: u32,
    /// Medium-latency integer operations (e.g. multiplies).
    pub medium: u32,
    /// Medium-latency float/vector operations.
    pub medium_fp: u32,
    /// Long operations (e.g. scalar divide).
    pub long: u32,
    /// Very long operations (e.g. decimal).
    pub very_long: u32,
    /// Memory operations (address generation + L1 pipeline; the hierarchy adds the
    /// per-level latency at simulation time).
    pub memory: u32,
    /// Control (branch) operations.
    pub control: u32,
}

impl LatencyRates {
    /// Derives the execution latency of an instruction from its latency class.
    pub fn derive(&self, def: &InstructionDef) -> u32 {
        let fpish = def.flags().intersects(InstrFlags::FLOAT | InstrFlags::VECTOR);
        match def.latency_class() {
            LatencyClass::Simple => {
                if fpish {
                    self.simple_fp
                } else {
                    self.simple
                }
            }
            LatencyClass::Medium => {
                if fpish {
                    self.medium_fp
                } else {
                    self.medium
                }
            }
            LatencyClass::Long => self.long,
            LatencyClass::VeryLong => self.very_long,
            LatencyClass::Memory => self.memory,
            LatencyClass::Control => self.control,
        }
    }
}

/// Reciprocal-throughput derivation rates (the `throughput` record).  The rule order
/// mirrors the original hand-coded derivation: sync, prefetch, stores, loads, decimal,
/// divide, sqrt, integer multiply, dual-issue simple ops, privileged, default.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRates {
    /// Synchronisation instructions.
    pub sync: f64,
    /// Software prefetches.
    pub prefetch: f64,
    /// Float/vector stores.
    pub store_fp: f64,
    /// Fixed point stores.
    pub store: f64,
    /// Update-form/algebraic loads (cracked into two internal operations).
    pub load_cracked: f64,
    /// Plain loads.
    pub load: f64,
    /// Decimal operations.
    pub decimal: f64,
    /// Float/vector divides.
    pub divide_fp: f64,
    /// Integer divides.
    pub divide: f64,
    /// Square roots.
    pub sqrt: f64,
    /// Scalar integer multiplies.
    pub integer_multiply: f64,
    /// Simple operations issuable on both FXU and LSU pipes.
    pub fxu_or_lsu: f64,
    /// Privileged operations.
    pub privileged: f64,
    /// Everything else (one per pipe per cycle on POWER7).
    pub default_rate: f64,
}

impl ThroughputRates {
    /// Derives the reciprocal throughput (cycles per instruction per pipe).
    pub fn derive(&self, def: &InstructionDef) -> f64 {
        let flags = def.flags();
        let fpish = flags.intersects(InstrFlags::FLOAT | InstrFlags::VECTOR);
        if flags.contains(InstrFlags::SYNC) {
            return self.sync;
        }
        if def.is_prefetch() {
            return self.prefetch;
        }
        if def.is_store() {
            return if fpish { self.store_fp } else { self.store };
        }
        if def.is_load() {
            return if def.is_update_form() || flags.contains(InstrFlags::ALGEBRAIC) {
                self.load_cracked
            } else {
                self.load
            };
        }
        if def.is_decimal() {
            return self.decimal;
        }
        if flags.contains(InstrFlags::DIVIDE) {
            return if fpish { self.divide_fp } else { self.divide };
        }
        if flags.contains(InstrFlags::SQRT) {
            return self.sqrt;
        }
        if flags.contains(InstrFlags::MULTIPLY) && def.is_integer() && !def.is_vector() {
            return self.integer_multiply;
        }
        if def.issue_class() == IssueClass::FxuOrLsu {
            return self.fxu_or_lsu;
        }
        if def.is_privileged() {
            return self.privileged;
        }
        self.default_rate
    }
}

/// A per-mnemonic override of the derived instruction properties (an `iprop` record).
#[derive(Debug, Clone)]
pub struct IpropOverride {
    /// Mnemonic the override applies to (validated against the ISA at build time).
    pub mnemonic: String,
    /// Override for the latency in cycles.
    pub latency: Option<u32>,
    /// Override for the reciprocal throughput.
    pub recip_throughput: Option<f64>,
    /// Source location of the record, for build-time diagnostics.
    pub line: u32,
    /// Source column of the mnemonic token.
    pub column: u32,
}

impl PartialEq for IpropOverride {
    /// Source locations are metadata, not content: two specs that differ only in
    /// where an override sits are the same machine.
    fn eq(&self, other: &Self) -> bool {
        self.mnemonic == other.mnemonic
            && self.latency == other.latency
            && self.recip_throughput == other.recip_throughput
    }
}

/// A parsed machine specification: the literal content of a `.uarch` file.
///
/// This is the round-trippable intermediate form — [`emit_machine`] regenerates the
/// canonical text and [`MachineSpec::build`] resolves it (plus the named ISA) into a
/// [`MicroArchitecture`].
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Machine name (e.g. `"POWER7"`).
    pub name: String,
    /// Name of the ISA spec this machine implements (resolved via
    /// [`mp_isa::spec::load_isa`]).
    pub isa_name: String,
    /// Nominal core frequency in GHz.
    pub frequency_ghz: f64,
    /// Maximum number of cores.
    pub max_cores: u32,
    /// Supported SMT widths (threads per core).
    pub smt_modes: Vec<SmtMode>,
    /// Per-core execution resources.
    pub pipes: CorePipes,
    /// Private cache hierarchy and memory latency.
    pub hierarchy: MemoryHierarchy,
    /// Chip-level shared uncore.
    pub uncore: UncoreGeometry,
    /// Per-unit area floorplan.
    pub floorplan: Vec<FloorplanEntry>,
    /// Latency derivation rates.
    pub latency: LatencyRates,
    /// Throughput derivation rates.
    pub throughput: ThroughputRates,
    /// Ground-truth energy model parameters.
    pub energy: EnergyParams,
    /// PMC mapping: platform event name per counter.
    pub pmc_names: Vec<(CounterId, String)>,
    /// Per-mnemonic property overrides.
    pub iprop_overrides: Vec<IpropOverride>,
}

const UNIT_KEYS: &[(Unit, &str)] = &[
    (Unit::Ifu, "ifu"),
    (Unit::Isu, "isu"),
    (Unit::Fxu, "fxu"),
    (Unit::Lsu, "lsu"),
    (Unit::Vsu, "vsu"),
    (Unit::Dfu, "dfu"),
    (Unit::Bru, "bru"),
];

const COUNTER_KEYS: &[(CounterId, &str)] = &[
    (CounterId::Cycles, "cycles"),
    (CounterId::InstrCompleted, "instructions"),
    (CounterId::FxuOps, "fxu-ops"),
    (CounterId::LsuOps, "lsu-ops"),
    (CounterId::VsuOps, "vsu-ops"),
    (CounterId::DfuOps, "dfu-ops"),
    (CounterId::BruOps, "bru-ops"),
    (CounterId::Loads, "loads"),
    (CounterId::Stores, "stores"),
    (CounterId::Prefetches, "prefetches"),
    (CounterId::L1Hits, "l1-hits"),
    (CounterId::L2Hits, "l2-hits"),
    (CounterId::L3Hits, "l3-hits"),
    (CounterId::MemAccesses, "mem-accesses"),
    (CounterId::L3Accesses, "l3-accesses"),
    (CounterId::L3Misses, "l3-misses"),
    (CounterId::BwStalls, "bw-stalls"),
];

const MEM_KEYS: &[(MemLevel, &str)] =
    &[(MemLevel::L1, "l1"), (MemLevel::L2, "l2"), (MemLevel::L3, "l3"), (MemLevel::Mem, "mem")];

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Key=value fields of one record, consumed by name with "missing/unknown/duplicate"
/// diagnostics anchored to the record head.
struct Fields<'a> {
    head: &'a Tok,
    entries: Vec<(String, Tok, bool)>,
}

impl<'a> Fields<'a> {
    fn new(head: &'a Tok, toks: &[Tok]) -> Result<Self, SpecError> {
        let mut entries = Vec::with_capacity(toks.len());
        for tok in toks {
            let (key, value) = tok.split_kv().ok_or_else(|| {
                SpecError::at(tok, format!("expected key=value, got `{}`", tok.text))
            })?;
            if entries.iter().any(|(k, _, _)| *k == key) {
                return Err(SpecError::at(tok, format!("duplicate field `{key}`")));
            }
            entries.push((key.to_owned(), value, false));
        }
        Ok(Self { head, entries })
    }

    fn take(&mut self, key: &str) -> Result<Tok, SpecError> {
        for (k, v, used) in &mut self.entries {
            if k == key {
                *used = true;
                return Ok(v.clone());
            }
        }
        Err(SpecError::at(self.head, format!("missing field `{key}`")))
    }

    fn take_opt(&mut self, key: &str) -> Option<Tok> {
        for (k, v, used) in &mut self.entries {
            if k == key {
                *used = true;
                return Some(v.clone());
            }
        }
        None
    }

    fn finish(self) -> Result<(), SpecError> {
        for (k, v, used) in &self.entries {
            if !used {
                return Err(SpecError::at(v, format!("unknown field `{k}`")));
            }
        }
        Ok(())
    }
}

fn take_u32(fields: &mut Fields<'_>, key: &str) -> Result<u32, SpecError> {
    fields.take(key)?.parse_int::<u32>(key)
}

fn take_f64(fields: &mut Fields<'_>, key: &str) -> Result<f64, SpecError> {
    fields.take(key)?.parse_f64(key)
}

fn take_latency(fields: &mut Fields<'_>, key: &str) -> Result<u32, SpecError> {
    let tok = fields.take(key)?;
    let v = tok.parse_int::<u32>(key)?;
    if v == 0 {
        return Err(SpecError::at(&tok, format!("latency `{key}` must be at least 1")));
    }
    Ok(v)
}

fn parse_cache_geometry(
    head: &Tok,
    level: MemLevel,
    fields: &mut Fields<'_>,
) -> Result<CacheGeometry, SpecError> {
    let capacity = fields.take("capacity")?.parse_int::<u64>("capacity")?;
    let line = fields.take("line")?.parse_int::<u64>("line")?;
    let ways = take_u32(fields, "ways")?;
    let latency = take_u32(fields, "latency")?;
    // CacheGeometry::new validates with panics; convert them to located diagnostics.
    std::panic::catch_unwind(|| CacheGeometry::new(level, capacity, line, ways, latency)).map_err(
        |panic| {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("invalid cache geometry");
            SpecError::at(head, msg)
        },
    )
}

struct Partial {
    name: Option<String>,
    isa_name: Option<String>,
    frequency_ghz: Option<f64>,
    max_cores: Option<u32>,
    smt_modes: Option<Vec<SmtMode>>,
    pipes: Option<CorePipes>,
    l1: Option<CacheGeometry>,
    l2: Option<CacheGeometry>,
    l3: Option<CacheGeometry>,
    mem_latency: Option<u32>,
    uncore_l3: Option<CacheGeometry>,
    uncore_port: Option<(u32, u32)>,
    floorplan: Option<Vec<FloorplanEntry>>,
    latency: Option<LatencyRates>,
    throughput: Option<ThroughputRates>,
    energy: Option<EnergyParams>,
    unit_base: Option<[(Unit, f64); 5]>,
    unit_wake: Option<[(Unit, f64); 5]>,
    energy_mem: Option<[(MemLevel, f64); 4]>,
    pmc_names: Vec<(CounterId, String)>,
    iprop_overrides: Vec<IpropOverride>,
}

/// Parses a machine specification.
///
/// # Errors
///
/// Returns a [`SpecError`] with the line and column of the first problem: unknown
/// records or fields, malformed numbers, invalid SMT widths or cache geometries, zero
/// latencies, duplicate or missing records.
pub fn parse_machine(text: &str) -> Result<MachineSpec, SpecError> {
    let lines = lex(text)?;
    let mut p = Partial {
        name: None,
        isa_name: None,
        frequency_ghz: None,
        max_cores: None,
        smt_modes: None,
        pipes: None,
        l1: None,
        l2: None,
        l3: None,
        mem_latency: None,
        uncore_l3: None,
        uncore_port: None,
        floorplan: None,
        latency: None,
        throughput: None,
        energy: None,
        unit_base: None,
        unit_wake: None,
        energy_mem: None,
        pmc_names: Vec::new(),
        iprop_overrides: Vec::new(),
    };

    for line in &lines {
        let head = &line[0];
        let rest = &line[1..];
        match head.text.as_str() {
            "machine" => {
                let tok =
                    rest.first().ok_or_else(|| SpecError::at(head, "`machine` needs a name"))?;
                set_once(&mut p.name, tok.text.clone(), head)?;
            }
            "isa" => {
                let tok =
                    rest.first().ok_or_else(|| SpecError::at(head, "`isa` needs a spec name"))?;
                set_once(&mut p.isa_name, tok.text.clone(), head)?;
            }
            "frequency-ghz" => {
                let tok = rest
                    .first()
                    .ok_or_else(|| SpecError::at(head, "`frequency-ghz` needs a value"))?;
                set_once(&mut p.frequency_ghz, tok.parse_f64("frequency")?, head)?;
            }
            "max-cores" => {
                let tok =
                    rest.first().ok_or_else(|| SpecError::at(head, "`max-cores` needs a value"))?;
                let cores = tok.parse_int::<u32>("core count")?;
                if cores == 0 {
                    return Err(SpecError::at(tok, "a chip needs at least one core"));
                }
                set_once(&mut p.max_cores, cores, head)?;
            }
            "smt" => {
                if rest.is_empty() {
                    return Err(SpecError::at(head, "`smt` needs at least one width"));
                }
                let mut modes = Vec::with_capacity(rest.len());
                for tok in rest {
                    let threads = tok.parse_int::<u32>("SMT width")?;
                    let mode = SmtMode::from_threads(threads).ok_or_else(|| {
                        SpecError::at(tok, format!("unsupported SMT width `{threads}`"))
                    })?;
                    if modes.contains(&mode) {
                        return Err(SpecError::at(tok, format!("duplicate SMT width `{threads}`")));
                    }
                    modes.push(mode);
                }
                set_once(&mut p.smt_modes, modes, head)?;
            }
            "pipes" => {
                let mut f = Fields::new(head, rest)?;
                let pipes = CorePipes {
                    dispatch_width: take_u32(&mut f, "dispatch")?,
                    completion_width: take_u32(&mut f, "completion")?,
                    fxu: take_u32(&mut f, "fxu")?,
                    lsu: take_u32(&mut f, "lsu")?,
                    vsu: take_u32(&mut f, "vsu")?,
                    dfu: take_u32(&mut f, "dfu")?,
                    bru: take_u32(&mut f, "bru")?,
                };
                f.finish()?;
                set_once(&mut p.pipes, pipes, head)?;
            }
            "cache" => {
                let level_tok =
                    rest.first().ok_or_else(|| SpecError::at(head, "`cache` needs a level"))?;
                let mut f = Fields::new(head, &rest[1..])?;
                match level_tok.text.as_str() {
                    "l1" => {
                        let g = parse_cache_geometry(head, MemLevel::L1, &mut f)?;
                        f.finish()?;
                        set_once(&mut p.l1, g, head)?;
                    }
                    "l2" => {
                        let g = parse_cache_geometry(head, MemLevel::L2, &mut f)?;
                        f.finish()?;
                        set_once(&mut p.l2, g, head)?;
                    }
                    "l3" => {
                        let g = parse_cache_geometry(head, MemLevel::L3, &mut f)?;
                        f.finish()?;
                        set_once(&mut p.l3, g, head)?;
                    }
                    other => {
                        return Err(SpecError::at(
                            level_tok,
                            format!("unknown cache level `{other}`"),
                        ))
                    }
                }
            }
            "memory" => {
                let mut f = Fields::new(head, rest)?;
                let latency = take_u32(&mut f, "latency")?;
                f.finish()?;
                set_once(&mut p.mem_latency, latency, head)?;
            }
            "uncore-l3" => {
                let mut f = Fields::new(head, rest)?;
                let g = parse_cache_geometry(head, MemLevel::L3, &mut f)?;
                f.finish()?;
                set_once(&mut p.uncore_l3, g, head)?;
            }
            "uncore-port" => {
                let mut f = Fields::new(head, rest)?;
                let cycles = take_u32(&mut f, "cycles")?;
                let queue = take_u32(&mut f, "queue")?;
                f.finish()?;
                if cycles == 0 || queue == 0 {
                    return Err(SpecError::at(
                        head,
                        "memory port needs non-zero cycles and queue depth",
                    ));
                }
                set_once(&mut p.uncore_port, (cycles, queue), head)?;
            }
            "floorplan" => {
                let mut f = Fields::new(head, rest)?;
                let mut plan = Vec::with_capacity(UNIT_KEYS.len());
                for (unit, key) in UNIT_KEYS {
                    if let Some(tok) = f.take_opt(key) {
                        plan.push(FloorplanEntry {
                            unit: *unit,
                            core_area_fraction: tok.parse_f64(key)?,
                        });
                    }
                }
                f.finish()?;
                set_once(&mut p.floorplan, plan, head)?;
            }
            "latency" => {
                let mut f = Fields::new(head, rest)?;
                let rates = LatencyRates {
                    simple: take_latency(&mut f, "simple")?,
                    simple_fp: take_latency(&mut f, "simple-fp")?,
                    medium: take_latency(&mut f, "medium")?,
                    medium_fp: take_latency(&mut f, "medium-fp")?,
                    long: take_latency(&mut f, "long")?,
                    very_long: take_latency(&mut f, "very-long")?,
                    memory: take_latency(&mut f, "memory")?,
                    control: take_latency(&mut f, "control")?,
                };
                f.finish()?;
                set_once(&mut p.latency, rates, head)?;
            }
            "throughput" => {
                let mut f = Fields::new(head, rest)?;
                let rates = ThroughputRates {
                    sync: take_f64(&mut f, "sync")?,
                    prefetch: take_f64(&mut f, "prefetch")?,
                    store_fp: take_f64(&mut f, "store-fp")?,
                    store: take_f64(&mut f, "store")?,
                    load_cracked: take_f64(&mut f, "load-cracked")?,
                    load: take_f64(&mut f, "load")?,
                    decimal: take_f64(&mut f, "decimal")?,
                    divide_fp: take_f64(&mut f, "divide-fp")?,
                    divide: take_f64(&mut f, "divide")?,
                    sqrt: take_f64(&mut f, "sqrt")?,
                    integer_multiply: take_f64(&mut f, "integer-multiply")?,
                    fxu_or_lsu: take_f64(&mut f, "fxu-or-lsu")?,
                    privileged: take_f64(&mut f, "privileged")?,
                    default_rate: take_f64(&mut f, "default")?,
                };
                f.finish()?;
                set_once(&mut p.throughput, rates, head)?;
            }
            "energy" => {
                let mut f = Fields::new(head, rest)?;
                // unit_base/unit_wake/mem_access_energy are filled from their own
                // records below; placeholder arrays keep the struct complete here.
                let energy = EnergyParams {
                    idle_power: take_f64(&mut f, "idle")?,
                    uncore_power: take_f64(&mut f, "uncore")?,
                    uncore_l3_energy: take_f64(&mut f, "uncore-l3")?,
                    uncore_mem_energy: take_f64(&mut f, "uncore-mem")?,
                    uncore_stall_energy: take_f64(&mut f, "uncore-stall")?,
                    per_core_power: take_f64(&mut f, "per-core")?,
                    smt_power: take_f64(&mut f, "smt")?,
                    complexity_scale: take_f64(&mut f, "complexity")?,
                    switching_scale: take_f64(&mut f, "switching")?,
                    prefetch_energy: take_f64(&mut f, "prefetch")?,
                    flush_energy: take_f64(&mut f, "flush")?,
                    ..EnergyParams::power7()
                };
                f.finish()?;
                set_once(&mut p.energy, energy, head)?;
            }
            "energy-unit-base" => {
                let arr = parse_unit_energies(head, rest)?;
                set_once(&mut p.unit_base, arr, head)?;
            }
            "energy-unit-wake" => {
                let arr = parse_unit_energies(head, rest)?;
                set_once(&mut p.unit_wake, arr, head)?;
            }
            "energy-mem" => {
                let mut f = Fields::new(head, rest)?;
                let mut arr = [(MemLevel::L1, 0.0); 4];
                for (i, (level, key)) in MEM_KEYS.iter().enumerate() {
                    arr[i] = (*level, take_f64(&mut f, key)?);
                }
                f.finish()?;
                set_once(&mut p.energy_mem, arr, head)?;
            }
            "pmc" => {
                let mut f = Fields::new(head, rest)?;
                for (counter, key) in COUNTER_KEYS {
                    if let Some(tok) = f.take_opt(key) {
                        if p.pmc_names.iter().any(|(c, _)| c == counter) {
                            return Err(SpecError::at(
                                &tok,
                                format!("duplicate pmc mapping for `{key}`"),
                            ));
                        }
                        p.pmc_names.push((*counter, tok.text.clone()));
                    }
                }
                f.finish()?;
            }
            "iprop" => {
                let mnemonic =
                    rest.first().ok_or_else(|| SpecError::at(head, "`iprop` needs a mnemonic"))?;
                let mut f = Fields::new(head, &rest[1..])?;
                let latency = match f.take_opt("latency") {
                    Some(tok) => {
                        let v = tok.parse_int::<u32>("latency")?;
                        if v == 0 {
                            return Err(SpecError::at(&tok, "latency must be at least 1"));
                        }
                        Some(v)
                    }
                    None => None,
                };
                let recip_throughput = match f.take_opt("rt") {
                    Some(tok) => {
                        let v = tok.parse_f64("reciprocal throughput")?;
                        if v <= 0.0 {
                            return Err(SpecError::at(
                                &tok,
                                "reciprocal throughput must be positive",
                            ));
                        }
                        Some(v)
                    }
                    None => None,
                };
                f.finish()?;
                if latency.is_none() && recip_throughput.is_none() {
                    return Err(SpecError::at(head, "`iprop` needs latency= and/or rt="));
                }
                p.iprop_overrides.push(IpropOverride {
                    mnemonic: mnemonic.text.clone(),
                    latency,
                    recip_throughput,
                    line: mnemonic.line,
                    column: mnemonic.column,
                });
            }
            other => return Err(SpecError::at(head, format!("unknown record `{other}`"))),
        }
    }

    let missing = |what: &str| SpecError::new(1, 1, format!("missing `{what}` record"));
    let mut energy = p.energy.ok_or_else(|| missing("energy"))?;
    energy.unit_base = p.unit_base.ok_or_else(|| missing("energy-unit-base"))?;
    energy.unit_wake = p.unit_wake.ok_or_else(|| missing("energy-unit-wake"))?;
    energy.mem_access_energy = p.energy_mem.ok_or_else(|| missing("energy-mem"))?;
    let (port_cycles, queue_depth) = p.uncore_port.ok_or_else(|| missing("uncore-port"))?;
    Ok(MachineSpec {
        name: p.name.ok_or_else(|| missing("machine"))?,
        isa_name: p.isa_name.ok_or_else(|| missing("isa"))?,
        frequency_ghz: p.frequency_ghz.ok_or_else(|| missing("frequency-ghz"))?,
        max_cores: p.max_cores.ok_or_else(|| missing("max-cores"))?,
        smt_modes: p.smt_modes.ok_or_else(|| missing("smt"))?,
        pipes: p.pipes.ok_or_else(|| missing("pipes"))?,
        hierarchy: MemoryHierarchy {
            l1: p.l1.ok_or_else(|| missing("cache l1"))?,
            l2: p.l2.ok_or_else(|| missing("cache l2"))?,
            l3: p.l3.ok_or_else(|| missing("cache l3"))?,
            mem_latency_cycles: p.mem_latency.ok_or_else(|| missing("memory"))?,
        },
        uncore: UncoreGeometry {
            shared_l3: p.uncore_l3.ok_or_else(|| missing("uncore-l3"))?,
            mem_port_cycles: port_cycles,
            mem_queue_depth: queue_depth,
        },
        floorplan: p.floorplan.ok_or_else(|| missing("floorplan"))?,
        latency: p.latency.ok_or_else(|| missing("latency"))?,
        throughput: p.throughput.ok_or_else(|| missing("throughput"))?,
        energy,
        pmc_names: p.pmc_names,
        iprop_overrides: p.iprop_overrides,
    })
}

fn set_once<T>(slot: &mut Option<T>, value: T, head: &Tok) -> Result<(), SpecError> {
    if slot.is_some() {
        return Err(SpecError::at(head, format!("duplicate `{}` record", head.text)));
    }
    *slot = Some(value);
    Ok(())
}

fn parse_unit_energies(head: &Tok, rest: &[Tok]) -> Result<[(Unit, f64); 5], SpecError> {
    let mut f = Fields::new(head, rest)?;
    let mut arr = [(Unit::Fxu, 0.0); 5];
    for (i, (unit, key)) in [
        (Unit::Fxu, "fxu"),
        (Unit::Lsu, "lsu"),
        (Unit::Vsu, "vsu"),
        (Unit::Dfu, "dfu"),
        (Unit::Bru, "bru"),
    ]
    .iter()
    .enumerate()
    {
        arr[i] = (*unit, take_f64(&mut f, key)?);
    }
    f.finish()?;
    Ok(arr)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn unit_key(unit: Unit) -> &'static str {
    UNIT_KEYS.iter().find(|(u, _)| *u == unit).map(|(_, k)| *k).expect("unit has a key")
}

fn counter_key(id: CounterId) -> &'static str {
    COUNTER_KEYS.iter().find(|(c, _)| *c == id).map(|(_, k)| *k).expect("counter has a key")
}

/// Emits a [`MachineSpec`] in the canonical spec format (deterministic record order),
/// such that `parse(emit(spec)) == spec`.
pub fn emit_machine(spec: &MachineSpec) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ =
        writeln!(out, "# Machine specification; see EXPERIMENTS.md, \"Defining a new backend\".");
    let _ = writeln!(out, "machine \"{}\"", spec.name);
    let _ = writeln!(out, "isa {}", spec.isa_name);
    let _ = writeln!(out, "frequency-ghz {}", spec.frequency_ghz);
    let _ = writeln!(out, "max-cores {}", spec.max_cores);
    let smt: Vec<String> =
        spec.smt_modes.iter().map(|m| m.threads_per_core().to_string()).collect();
    let _ = writeln!(out, "smt {}", smt.join(" "));
    let pp = &spec.pipes;
    let _ = writeln!(
        out,
        "pipes dispatch={} completion={} fxu={} lsu={} vsu={} dfu={} bru={}",
        pp.dispatch_width, pp.completion_width, pp.fxu, pp.lsu, pp.vsu, pp.dfu, pp.bru
    );
    for (label, g) in
        [("l1", &spec.hierarchy.l1), ("l2", &spec.hierarchy.l2), ("l3", &spec.hierarchy.l3)]
    {
        let _ = writeln!(
            out,
            "cache {label} capacity={} line={} ways={} latency={}",
            g.capacity_bytes, g.line_bytes, g.ways, g.hit_latency_cycles
        );
    }
    let _ = writeln!(out, "memory latency={}", spec.hierarchy.mem_latency_cycles);
    let g = &spec.uncore.shared_l3;
    let _ = writeln!(
        out,
        "uncore-l3 capacity={} line={} ways={} latency={}",
        g.capacity_bytes, g.line_bytes, g.ways, g.hit_latency_cycles
    );
    let _ = writeln!(
        out,
        "uncore-port cycles={} queue={}",
        spec.uncore.mem_port_cycles, spec.uncore.mem_queue_depth
    );
    let plan: Vec<String> = spec
        .floorplan
        .iter()
        .map(|e| format!("{}={}", unit_key(e.unit), e.core_area_fraction))
        .collect();
    let _ = writeln!(out, "floorplan {}", plan.join(" "));
    let l = &spec.latency;
    let _ = writeln!(
        out,
        "latency simple={} simple-fp={} medium={} medium-fp={} long={} very-long={} \
         memory={} control={}",
        l.simple, l.simple_fp, l.medium, l.medium_fp, l.long, l.very_long, l.memory, l.control
    );
    let t = &spec.throughput;
    let _ = writeln!(
        out,
        "throughput sync={} prefetch={} store-fp={} store={} load-cracked={} load={} \
         decimal={} divide-fp={} divide={} sqrt={} integer-multiply={} fxu-or-lsu={} \
         privileged={} default={}",
        t.sync,
        t.prefetch,
        t.store_fp,
        t.store,
        t.load_cracked,
        t.load,
        t.decimal,
        t.divide_fp,
        t.divide,
        t.sqrt,
        t.integer_multiply,
        t.fxu_or_lsu,
        t.privileged,
        t.default_rate
    );
    let e = &spec.energy;
    let _ = writeln!(
        out,
        "energy idle={} uncore={} uncore-l3={} uncore-mem={} uncore-stall={} per-core={} \
         smt={} complexity={} switching={} prefetch={} flush={}",
        e.idle_power,
        e.uncore_power,
        e.uncore_l3_energy,
        e.uncore_mem_energy,
        e.uncore_stall_energy,
        e.per_core_power,
        e.smt_power,
        e.complexity_scale,
        e.switching_scale,
        e.prefetch_energy,
        e.flush_energy
    );
    let units = |arr: &[(Unit, f64); 5]| -> String {
        arr.iter().map(|(u, v)| format!("{}={v}", unit_key(*u))).collect::<Vec<_>>().join(" ")
    };
    let _ = writeln!(out, "energy-unit-base {}", units(&e.unit_base));
    let _ = writeln!(out, "energy-unit-wake {}", units(&e.unit_wake));
    let mem: Vec<String> = e
        .mem_access_energy
        .iter()
        .map(|(l, v)| {
            let key = MEM_KEYS.iter().find(|(ml, _)| ml == l).map(|(_, k)| *k).expect("mem key");
            format!("{key}={v}")
        })
        .collect();
    let _ = writeln!(out, "energy-mem {}", mem.join(" "));
    for (counter, name) in &spec.pmc_names {
        let _ = writeln!(out, "pmc {}={}", counter_key(*counter), name);
    }
    for o in &spec.iprop_overrides {
        let mut line = format!("iprop {}", o.mnemonic);
        if let Some(lat) = o.latency {
            let _ = write!(line, " latency={lat}");
        }
        if let Some(rt) = o.recip_throughput {
            let _ = write!(line, " rt={rt}");
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

// ---------------------------------------------------------------------------
// Building
// ---------------------------------------------------------------------------

impl MachineSpec {
    /// Resolves the spec into a [`MicroArchitecture`] against an already-loaded ISA.
    ///
    /// `spec_digest` should fingerprint the spec texts (see [`backend`]); pass 0 for
    /// ad-hoc specs that never reach the measurement cache.
    ///
    /// # Errors
    ///
    /// Returns a located [`SpecError`] when an `iprop` override names a mnemonic the
    /// ISA does not define, and a position-less one when the ISA name mismatches.
    pub fn build(&self, isa: Isa, spec_digest: u128) -> Result<MicroArchitecture, SpecError> {
        let mut iprops = InstrPropsTable::new();
        for def in isa.instructions() {
            iprops.insert(InstrProps::new(
                def.mnemonic(),
                self.latency.derive(def),
                self.throughput.derive(def),
                def.units().to_vec(),
            ));
        }
        for o in &self.iprop_overrides {
            let props = iprops.get_mut(&o.mnemonic).ok_or_else(|| {
                SpecError::new(
                    o.line,
                    o.column,
                    format!("unknown mnemonic `{}` in iprop override", o.mnemonic),
                )
            })?;
            if let Some(lat) = o.latency {
                props.latency_cycles = lat;
            }
            if let Some(rt) = o.recip_throughput {
                props.recip_throughput = rt;
            }
        }
        let pmc_names = if self.pmc_names.is_empty() {
            CounterId::ALL.iter().map(|c| (*c, c.name().to_owned())).collect()
        } else {
            let mut names = self.pmc_names.clone();
            for id in CounterId::ALL {
                if !names.iter().any(|(c, _)| *c == id) {
                    names.push((id, id.name().to_owned()));
                }
            }
            names.sort_by_key(|(c, _)| CounterId::ALL.iter().position(|x| x == c));
            names
        };
        Ok(MicroArchitecture {
            name: self.name.clone(),
            isa,
            pipes: self.pipes.clone(),
            hierarchy: self.hierarchy.clone(),
            uncore: self.uncore.clone(),
            max_cores: self.max_cores,
            smt_modes: self.smt_modes.clone(),
            frequency_ghz: self.frequency_ghz,
            floorplan: self.floorplan.clone(),
            energy: self.energy.clone(),
            pmc_names,
            spec_digest,
            iprops,
        })
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The embedded machine-spec source for a named backend, if the workspace ships one.
pub fn machine_spec_source(name: &str) -> Option<&'static str> {
    MACHINE_SOURCES.iter().find(|(n, _)| *n == name).map(|(_, text)| *text)
}

/// Names of the backends shipped with the workspace.
pub fn backend_names() -> Vec<&'static str> {
    MACHINE_SOURCES.iter().map(|(n, _)| *n).collect()
}

/// Loads an embedded backend by name: parses its machine spec (once per process),
/// resolves its ISA and stamps the digest of both spec texts.
///
/// # Panics
///
/// Panics if the embedded spec fails to parse or build — shipped specs are covered by
/// the round-trip tests, so this only fires on a corrupted build.
pub fn backend(name: &str) -> Option<MicroArchitecture> {
    static CACHE: OnceLock<Mutex<HashMap<&'static str, MicroArchitecture>>> = OnceLock::new();
    let (key, source) = MACHINE_SOURCES.iter().find(|(n, _)| *n == name)?;
    let mut cache =
        CACHE.get_or_init(|| Mutex::new(HashMap::new())).lock().expect("cache never poisoned");
    if let Some(cached) = cache.get(key) {
        return Some(cached.clone());
    }
    let spec = parse_machine(source)
        .unwrap_or_else(|e| panic!("embedded machine spec `{name}` is invalid: {e}"));
    let isa_text = mp_isa::spec::isa_spec_source(&spec.isa_name)
        .unwrap_or_else(|| panic!("machine spec `{name}` names unknown ISA `{}`", spec.isa_name));
    let isa = mp_isa::spec::load_isa(&spec.isa_name).expect("isa source exists");
    let digest = spec_digest(&[isa_text, source]);
    let uarch = spec
        .build(isa, digest)
        .unwrap_or_else(|e| panic!("embedded machine spec `{name}` does not build: {e}"));
    cache.insert(key, uarch.clone());
    Some(uarch)
}

/// The POWER8-like second backend, loaded from `specs/power8.uarch`.
pub fn power8() -> MicroArchitecture {
    backend("power8").expect("power8 machine spec is embedded")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power7::handcoded::power7_handcoded;
    use crate::power7::power7;

    #[test]
    fn power7_machine_spec_round_trips() {
        let spec = parse_machine(POWER7_UARCH_SPEC).expect("power7 uarch parses");
        let text = emit_machine(&spec);
        let reparsed = parse_machine(&text).expect("emitted spec parses");
        assert_eq!(reparsed, spec);
        assert_eq!(emit_machine(&reparsed), text);
    }

    #[test]
    fn power8_machine_spec_round_trips() {
        let spec = parse_machine(POWER8_UARCH_SPEC).expect("power8 uarch parses");
        let text = emit_machine(&spec);
        assert_eq!(parse_machine(&text).expect("emitted spec parses"), spec);
    }

    #[test]
    fn spec_loaded_power7_matches_the_handcoded_description() {
        let loaded = power7();
        let hand = power7_handcoded();
        assert_eq!(loaded.name, hand.name);
        assert_eq!(loaded.isa, hand.isa);
        assert_eq!(loaded.pipes, hand.pipes);
        assert_eq!(loaded.hierarchy, hand.hierarchy);
        assert_eq!(loaded.uncore, hand.uncore);
        assert_eq!(loaded.max_cores, hand.max_cores);
        assert_eq!(loaded.smt_modes, hand.smt_modes);
        assert!((loaded.frequency_ghz - hand.frequency_ghz).abs() < 1e-12);
        assert_eq!(loaded.floorplan, hand.floorplan);
        assert_eq!(loaded.energy, hand.energy);
        assert_eq!(loaded.pmc_names, hand.pmc_names);
        assert_eq!(loaded.iprops, hand.iprops);
        assert_ne!(loaded.spec_digest, 0, "loader stamps a digest");
    }

    #[test]
    fn backends_have_distinct_digests() {
        let p7 = backend("power7").unwrap();
        let p8 = backend("power8").unwrap();
        assert_ne!(p7.spec_digest, 0);
        assert_ne!(p8.spec_digest, 0);
        assert_ne!(p7.spec_digest, p8.spec_digest);
    }

    #[test]
    fn power8_is_a_bigger_chip() {
        let p7 = power7();
        let p8 = power8();
        assert!(p8.max_cores > p7.max_cores);
        assert!(p8.smt_modes.contains(&SmtMode::Smt8));
        assert!(p8.hierarchy.l1.capacity_bytes > p7.hierarchy.l1.capacity_bytes);
        assert!(p8.uncore.shared_l3.capacity_bytes > p7.uncore.shared_l3.capacity_bytes);
        assert!(p8.pipes.dispatch_width > p7.pipes.dispatch_width);
        // Same ISA, so every instruction is simulable on both.
        assert_eq!(p8.isa, p7.isa);
        for def in p8.isa.instructions() {
            assert!(p8.iprops.get(def.mnemonic()).is_some());
        }
    }

    #[test]
    fn unknown_iprop_mnemonic_is_a_located_build_error() {
        let text = POWER7_UARCH_SPEC.to_owned() + "iprop nosuchinstr latency=3\n";
        let spec = parse_machine(&text).expect("parse succeeds; validation is at build");
        let isa = mp_isa::spec::power7_isa();
        let err = spec.build(isa, 0).unwrap_err();
        assert!(err.message.contains("unknown mnemonic `nosuchinstr`"));
        assert_eq!(err.line as usize, POWER7_UARCH_SPEC.lines().count() + 1);
        assert!(err.column > 1);
    }

    #[test]
    fn zero_latency_is_rejected_with_location() {
        let text = POWER7_UARCH_SPEC.replace("latency simple=1", "latency simple=0");
        let err = parse_machine(&text).unwrap_err();
        assert!(err.message.contains("must be at least 1"), "{}", err.message);
        assert!(err.line > 0 && err.column > 0);
    }

    #[test]
    fn iprop_overrides_apply() {
        let text = POWER7_UARCH_SPEC.to_owned() + "iprop add latency=7 rt=2.5\n";
        let spec = parse_machine(&text).unwrap();
        let uarch = spec.build(mp_isa::spec::power7_isa(), 0).unwrap();
        assert_eq!(uarch.props("add").latency_cycles, 7);
        assert!((uarch.props("add").recip_throughput - 2.5).abs() < 1e-12);
    }

    #[test]
    fn unknown_record_is_located() {
        let err = parse_machine("machine \"X\"\nwidget a=1\n").unwrap_err();
        assert_eq!((err.line, err.column), (2, 1));
        assert!(err.message.contains("widget"));
    }
}
