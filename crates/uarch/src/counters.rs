//! Performance monitoring counters (PMCs) and counter-derived metrics.
//!
//! The micro-architecture definition associates a performance counter with every power
//! component of the bottom-up model: per-unit operation counts (FXU, LSU, VSU, ...) and
//! per-memory-level access counts (L1, L2, L3, MEM).  The counter-based IPC formula —
//! instructions completed over cycles — is the "IPC property" the paper requires for its
//! automatic bootstrap process.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Identifier of one performance counter event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CounterId {
    /// Core cycles elapsed.
    Cycles,
    /// Instructions completed.
    InstrCompleted,
    /// Operations executed by the fixed point pipes.
    FxuOps,
    /// Operations executed by the load/store pipes.
    LsuOps,
    /// Operations executed by the vector-scalar pipes.
    VsuOps,
    /// Operations executed by the decimal pipe.
    DfuOps,
    /// Operations executed by the branch pipe.
    BruOps,
    /// Loads retired.
    Loads,
    /// Stores retired.
    Stores,
    /// Data prefetches issued.
    Prefetches,
    /// Demand accesses that hit in the L1 data cache.
    L1Hits,
    /// Demand accesses that hit in the L2 cache.
    L2Hits,
    /// Demand accesses that hit in the local L3 slice.
    L3Hits,
    /// Demand accesses served by main memory.
    MemAccesses,
    /// Demand accesses that reached the L3 (hit or miss) — the uncore access counter.
    L3Accesses,
    /// Demand accesses that missed the L3 and required a memory line transfer.
    L3Misses,
    /// Cycles a hardware thread spent stalled on the full memory-port queue
    /// (shared-uncore mode bandwidth contention; always 0 with private uncore).
    BwStalls,
}

impl CounterId {
    /// All counters, in a stable order (the feature order used by the regression models).
    pub const ALL: [CounterId; 17] = [
        CounterId::Cycles,
        CounterId::InstrCompleted,
        CounterId::FxuOps,
        CounterId::LsuOps,
        CounterId::VsuOps,
        CounterId::DfuOps,
        CounterId::BruOps,
        CounterId::Loads,
        CounterId::Stores,
        CounterId::Prefetches,
        CounterId::L1Hits,
        CounterId::L2Hits,
        CounterId::L3Hits,
        CounterId::MemAccesses,
        CounterId::L3Accesses,
        CounterId::L3Misses,
        CounterId::BwStalls,
    ];

    /// Mnemonic used when printing counter traces.
    pub const fn name(self) -> &'static str {
        match self {
            CounterId::Cycles => "PM_RUN_CYC",
            CounterId::InstrCompleted => "PM_INST_CMPL",
            CounterId::FxuOps => "PM_FXU_FIN",
            CounterId::LsuOps => "PM_LSU_FIN",
            CounterId::VsuOps => "PM_VSU_FIN",
            CounterId::DfuOps => "PM_DFU_FIN",
            CounterId::BruOps => "PM_BRU_FIN",
            CounterId::Loads => "PM_LD_CMPL",
            CounterId::Stores => "PM_ST_CMPL",
            CounterId::Prefetches => "PM_LSU_PREF",
            CounterId::L1Hits => "PM_LD_HIT_L1",
            CounterId::L2Hits => "PM_DATA_FROM_L2",
            CounterId::L3Hits => "PM_DATA_FROM_L3",
            CounterId::MemAccesses => "PM_DATA_FROM_MEM",
            CounterId::L3Accesses => "PM_L3_ACCESS",
            CounterId::L3Misses => "PM_L3_MISS",
            CounterId::BwStalls => "PM_MEM_BW_STALL_CYC",
        }
    }
}

impl fmt::Display for CounterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete set of counter readings for one hardware thread (or an aggregate over
/// several threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterValues {
    /// Core cycles elapsed.
    pub cycles: u64,
    /// Instructions completed.
    pub instr_completed: u64,
    /// FXU operations.
    pub fxu_ops: u64,
    /// LSU operations.
    pub lsu_ops: u64,
    /// VSU operations.
    pub vsu_ops: u64,
    /// DFU operations.
    pub dfu_ops: u64,
    /// BRU operations.
    pub bru_ops: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// Prefetches issued.
    pub prefetches: u64,
    /// L1 data cache hits.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L3 hits.
    pub l3_hits: u64,
    /// Main memory accesses.
    pub mem_accesses: u64,
    /// Demand accesses that reached the L3 (local slice or shared), hit or miss.
    pub l3_accesses: u64,
    /// Demand accesses that missed the L3 and transferred a line from memory.
    pub l3_misses: u64,
    /// Cycles stalled on the full memory-port queue (shared-uncore mode only).
    pub bw_stalls: u64,
}

impl CounterValues {
    /// Reads one counter by id.
    pub fn get(&self, id: CounterId) -> u64 {
        match id {
            CounterId::Cycles => self.cycles,
            CounterId::InstrCompleted => self.instr_completed,
            CounterId::FxuOps => self.fxu_ops,
            CounterId::LsuOps => self.lsu_ops,
            CounterId::VsuOps => self.vsu_ops,
            CounterId::DfuOps => self.dfu_ops,
            CounterId::BruOps => self.bru_ops,
            CounterId::Loads => self.loads,
            CounterId::Stores => self.stores,
            CounterId::Prefetches => self.prefetches,
            CounterId::L1Hits => self.l1_hits,
            CounterId::L2Hits => self.l2_hits,
            CounterId::L3Hits => self.l3_hits,
            CounterId::MemAccesses => self.mem_accesses,
            CounterId::L3Accesses => self.l3_accesses,
            CounterId::L3Misses => self.l3_misses,
            CounterId::BwStalls => self.bw_stalls,
        }
    }

    /// The counter-based IPC formula: instructions completed per cycle.
    ///
    /// Returns 0.0 when no cycles elapsed.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instr_completed as f64 / self.cycles as f64
        }
    }

    /// Per-cycle utilisation (events per cycle) of one counter.
    pub fn rate(&self, id: CounterId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.get(id) as f64 / self.cycles as f64
        }
    }

    /// Total memory-hierarchy demand accesses (sum of the per-level counters).
    pub fn memory_accesses(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.l3_hits + self.mem_accesses
    }
}

impl Add for CounterValues {
    type Output = CounterValues;

    fn add(self, rhs: CounterValues) -> CounterValues {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for CounterValues {
    fn add_assign(&mut self, rhs: CounterValues) {
        self.cycles += rhs.cycles;
        self.instr_completed += rhs.instr_completed;
        self.fxu_ops += rhs.fxu_ops;
        self.lsu_ops += rhs.lsu_ops;
        self.vsu_ops += rhs.vsu_ops;
        self.dfu_ops += rhs.dfu_ops;
        self.bru_ops += rhs.bru_ops;
        self.loads += rhs.loads;
        self.stores += rhs.stores;
        self.prefetches += rhs.prefetches;
        self.l1_hits += rhs.l1_hits;
        self.l2_hits += rhs.l2_hits;
        self.l3_hits += rhs.l3_hits;
        self.mem_accesses += rhs.mem_accesses;
        self.l3_accesses += rhs.l3_accesses;
        self.l3_misses += rhs.l3_misses;
        self.bw_stalls += rhs.bw_stalls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_formula() {
        let c = CounterValues { cycles: 1000, instr_completed: 2500, ..Default::default() };
        assert!((c.ipc() - 2.5).abs() < 1e-12);
        assert_eq!(CounterValues::default().ipc(), 0.0);
    }

    #[test]
    fn get_matches_fields() {
        let c = CounterValues { fxu_ops: 7, l3_hits: 9, ..Default::default() };
        assert_eq!(c.get(CounterId::FxuOps), 7);
        assert_eq!(c.get(CounterId::L3Hits), 9);
        assert_eq!(c.get(CounterId::MemAccesses), 0);
    }

    #[test]
    fn addition_is_fieldwise() {
        let a = CounterValues { cycles: 10, lsu_ops: 3, ..Default::default() };
        let b = CounterValues { cycles: 5, lsu_ops: 4, l1_hits: 2, ..Default::default() };
        let s = a + b;
        assert_eq!(s.cycles, 15);
        assert_eq!(s.lsu_ops, 7);
        assert_eq!(s.l1_hits, 2);
    }

    #[test]
    fn rates_and_memory_accesses() {
        let c = CounterValues {
            cycles: 100,
            l1_hits: 30,
            l2_hits: 10,
            l3_hits: 5,
            mem_accesses: 5,
            ..Default::default()
        };
        assert!((c.rate(CounterId::L1Hits) - 0.3).abs() < 1e-12);
        assert_eq!(c.memory_accesses(), 50);
    }

    #[test]
    fn uncore_counters_round_trip() {
        let a = CounterValues { l3_accesses: 9, l3_misses: 4, bw_stalls: 17, ..Default::default() };
        let b = CounterValues { l3_accesses: 1, l3_misses: 1, bw_stalls: 3, ..Default::default() };
        let s = a + b;
        assert_eq!(s.get(CounterId::L3Accesses), 10);
        assert_eq!(s.get(CounterId::L3Misses), 5);
        assert_eq!(s.get(CounterId::BwStalls), 20);
    }

    #[test]
    fn all_counter_ids_have_distinct_names() {
        let mut names: Vec<&str> = CounterId::ALL.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), CounterId::ALL.len());
    }
}
