//! One function per table/figure of the paper's evaluation.
//!
//! The heavy artifacts (measured training set, measured SPEC proxies, bootstrap records)
//! are shared between figures through the [`ModelStudy`], [`TaxonomyStudy`] and
//! [`StressmarkStudy`] containers so that a `reproduce_all` run measures everything once.

use std::fmt::Write as _;

use microprobe::bootstrap::{BootstrapOptions, BootstrapRecord};
use microprobe::platform::{Platform, SimPlatform};
use mp_power::{
    paae, per_config_paae, BottomUpModel, PowerModel, SampleKind, TopDownModel, TrainingSet,
    WorkloadSample,
};
use mp_sim::{ChipSim, SimOptions};
use mp_stressmark::{
    expert_dse_sequences, expert_manual_set, microprobe_sequences, Figure9Report, StressmarkSearch,
};
use mp_uarch::{CmpSmtConfig, InstrPropsTable, SmtMode};
use mp_workloads::{daxpy_kernels, extreme_cases, spec_proxies, TrainingOptions, TrainingSuite};

use mp_runtime::ExperimentSession;

use crate::runner::{measurement_plan, MeasuredBenchmark};
use crate::table3::Table3;

/// How large an experiment run should be.
///
/// `Quick` is sized for smoke tests and CI, `Standard` for an interactive reproduction of
/// every figure's shape in a few minutes, `Full` for a paper-scale run (Table 2 counts,
/// 4 K loops, all 24 configurations, the complete 540-sequence DSE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Minutes-scale smoke run.
    Quick,
    /// Default: reproduces every figure's shape.
    Standard,
    /// Paper-scale run (slow).
    Full,
}

impl ExperimentScale {
    /// Parses a command line argument (`quick`, `standard`/`std`, `full`).
    pub fn from_arg(arg: Option<&str>) -> Self {
        match arg.map(str::to_ascii_lowercase).as_deref() {
            Some("quick") => ExperimentScale::Quick,
            Some("full") => ExperimentScale::Full,
            _ => ExperimentScale::Standard,
        }
    }

    fn training_scale(self) -> f64 {
        match self {
            ExperimentScale::Quick => 0.03,
            ExperimentScale::Standard => 0.08,
            ExperimentScale::Full => 1.0,
        }
    }

    /// The loop body length of generated benchmarks at this scale.
    pub fn loop_instructions(self) -> usize {
        match self {
            ExperimentScale::Quick => 96,
            ExperimentScale::Standard => 192,
            ExperimentScale::Full => 4096,
        }
    }

    fn cores(self) -> Vec<u32> {
        match self {
            ExperimentScale::Quick => vec![1, 2, 4],
            ExperimentScale::Standard => vec![1, 2, 4, 6, 8],
            ExperimentScale::Full => (1..=8).collect(),
        }
    }

    /// The DSE candidate budget at this scale (`None` = exhaustive).
    pub fn stressmark_budget(self) -> Option<usize> {
        match self {
            ExperimentScale::Quick => Some(30),
            ExperimentScale::Standard => Some(120),
            ExperimentScale::Full => None,
        }
    }

    fn bootstrap_instructions(self) -> Option<Vec<String>> {
        match self {
            // The quick run restricts the taxonomy to the instructions the paper's
            // Table 3 actually shows (plus the Section 6 candidates).
            ExperimentScale::Quick => Some(
                [
                    "mulldo",
                    "subf",
                    "addic",
                    "lxvw4x",
                    "lvewx",
                    "lbz",
                    "xvnmsubmdp",
                    "xvmaddadp",
                    "xstsqrtdp",
                    "add",
                    "nor",
                    "and",
                    "ldux",
                    "lwax",
                    "lfsu",
                    "lhaux",
                    "lwaux",
                    "lhau",
                    "stxvw4x",
                    "stxsdx",
                    "stfd",
                    "stfsux",
                    "stfdux",
                    "stfdu",
                    "mullw",
                    "lxvd2x",
                ]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
            ),
            ExperimentScale::Standard | ExperimentScale::Full => None,
        }
    }

    /// The simulator options used at this scale (shorter runs for `Quick`/`Standard`).
    pub fn sim_options(self) -> SimOptions {
        match self {
            ExperimentScale::Quick => SimOptions {
                warmup_cycles: 1_500,
                measure_cycles: 4_000,
                sample_cycles: 500,
                ..SimOptions::default()
            },
            ExperimentScale::Standard => SimOptions::fast(),
            ExperimentScale::Full => SimOptions::default(),
        }
    }
}

/// The measured artifacts shared by the power-modeling figures (5a, 5b, 6, 7, 8).
pub struct ModelStudy {
    /// Labelled training samples (micro-architecture aware + random).
    pub training: TrainingSet,
    /// Measured SPEC proxy samples over all evaluated configurations.
    pub spec: Vec<WorkloadSample>,
    /// Measured extreme-case samples.
    pub extreme: Vec<WorkloadSample>,
    /// Measured idle (workload-independent) power.
    pub idle_power: f64,
    /// The bottom-up model.
    pub bu: BottomUpModel,
    /// All four models (TD_Micro, TD_Random, TD_SPEC, BU) for the comparison figures.
    pub models: Vec<Box<dyn PowerModel>>,
}

/// The artifacts of the instruction-taxonomy case study (Table 3).
pub struct TaxonomyStudy {
    /// Raw per-instruction bootstrap records.
    pub records: Vec<BootstrapRecord>,
    /// The bootstrapped property table (used by the stressmark heuristic).
    pub props: InstrPropsTable,
    /// The assembled taxonomy.
    pub table: Table3,
}

/// The artifacts of the max-power stressmark case study (Figure 9).
pub struct StressmarkStudy {
    /// The normalised Figure 9 report.
    pub report: Figure9Report,
    /// Power spread (max/min ratio) inside the Expert-DSE set: the paper's observation
    /// that instruction order alone changes power considerably.
    pub order_spread: f64,
}

/// The experiment driver.
///
/// All measurement flows through one memoizing [`ExperimentSession`], so a process that
/// regenerates several figures (e.g. `reproduce_all`) measures each unique
/// `(benchmark, configuration)` pair exactly once.
pub struct Experiments {
    session: ExperimentSession<SimPlatform>,
    scale: ExperimentScale,
}

impl Experiments {
    /// Creates a driver at the given scale, backed by the simulated POWER7 platform.
    pub fn new(scale: ExperimentScale) -> Self {
        Self::on_backend("power7", scale).expect("the power7 machine spec is embedded")
    }

    /// Creates a driver at the given scale on a named spec-loaded backend (any name
    /// from [`mp_uarch::backend_names`]); the whole pipeline — training, modeling,
    /// taxonomy, stressmark search — then runs against that machine description.
    ///
    /// When `MP_SERVICE_ADDR` is set (and non-empty), the driver runs in *client
    /// mode*: the session routes cache misses to the measurement daemon at that
    /// address instead of simulating locally, and the local store tier stays off
    /// (persistence lives with the daemon).  Everything else — keys, dedup, stats,
    /// stdout — is unchanged, so the binaries produce byte-identical output either
    /// way.  An unreachable or incompatible daemon is a loud panic, never a silent
    /// fallback to local simulation: a determinism CI job comparing the two modes
    /// must fail, not accidentally compare in-process against itself.  The local
    /// platform is still fully constructed in client mode — direct simulator calls
    /// (e.g. `exp_cross_backend`'s fixture runs) and `idle_power` stay local; only
    /// session-mediated measurement crosses the wire.  Note the daemon must run at
    /// the *same scale*: job keys do not cover [`SimOptions`], so a scale mismatch
    /// would silently serve measurements from the daemon's scale.
    ///
    /// Returns `None` for an unknown backend name.
    pub fn on_backend(backend: &str, scale: ExperimentScale) -> Option<Self> {
        let uarch = mp_uarch::backend(backend)?;
        let sim = ChipSim::new(uarch).with_options(scale.sim_options());
        let platform = SimPlatform::new(sim);
        let session = match std::env::var(mp_service::SERVICE_ADDR_ENV)
            .ok()
            .filter(|addr| !addr.is_empty())
        {
            Some(addr) => mp_service::RemoteSession::connect(platform, &addr)
                .unwrap_or_else(|error| {
                    panic!("{} is set but unusable: {error}", mp_service::SERVICE_ADDR_ENV)
                })
                .into_inner(),
            None => ExperimentSession::new(platform),
        };
        Some(Self { session, scale })
    }

    /// The platform used for all measurements.
    pub fn platform(&self) -> &SimPlatform {
        self.session.platform()
    }

    /// The memoizing measurement session behind every experiment.
    pub fn session(&self) -> &ExperimentSession<SimPlatform> {
        &self.session
    }

    /// The CMP-SMT configurations evaluated at this scale: the scale's core counts
    /// (clamped to the backend's) crossed with every SMT mode the machine description
    /// lists — SMT1/2/4 on POWER7, up to SMT8 on a POWER8-like backend.
    pub fn configs(&self) -> Vec<CmpSmtConfig> {
        let uarch = self.platform().uarch();
        let mut configs = Vec::new();
        for cores in self.scale.cores() {
            if cores > uarch.max_cores {
                continue;
            }
            for &smt in &uarch.smt_modes {
                configs.push(CmpSmtConfig::new(cores, smt));
            }
        }
        configs
    }

    // ----------------------------------------------------------------- shared studies

    /// Generates and measures everything the power-model figures need, and trains the
    /// four models.
    pub fn model_study(&self) -> ModelStudy {
        let _span = mp_telemetry::span("exp.model_study");
        let arch = self.platform().uarch().clone();
        let loop_len = self.scale.loop_instructions();
        let suite = TrainingSuite::generate(
            &arch,
            TrainingOptions::reduced(self.scale.training_scale(), loop_len),
        )
        .expect("training suite generation is infallible for the built-in families");

        // Micro-architecture aware benchmarks are only needed on the single-core
        // configurations (methodology steps 1 and 2); random benchmarks run everywhere.
        let micro: Vec<MeasuredBenchmark> = suite
            .benchmarks()
            .iter()
            .filter(|tb| !tb.family.is_random())
            .map(|tb| {
                MeasuredBenchmark::new(
                    tb.benchmark.name().to_owned(),
                    tb.benchmark.clone(),
                    SampleKind::MicroArch,
                )
            })
            .collect();
        let random: Vec<MeasuredBenchmark> = suite
            .benchmarks()
            .iter()
            .filter(|tb| tb.family.is_random())
            .map(|tb| {
                MeasuredBenchmark::new(
                    tb.benchmark.name().to_owned(),
                    tb.benchmark.clone(),
                    SampleKind::Random,
                )
            })
            .collect();

        // The bottom-up methodology only consumes the single-core micro-architecture
        // samples (steps 1 and 2), but the TD_Micro comparison model is trained on the
        // same inputs across all configurations, so the micro benchmarks are measured on
        // every evaluated configuration too (as in the paper's model comparison).
        let all_configs = self.configs();

        let mut training = TrainingSet::new();
        training.extend(self.session.run(&measurement_plan(&micro, &all_configs)));
        training.extend(self.session.run(&measurement_plan(&random, &all_configs)));

        // SPEC proxies and extreme cases over every evaluated configuration.
        let spec_benchmarks: Vec<MeasuredBenchmark> = spec_proxies()
            .iter()
            .map(|proxy| {
                let bench = proxy
                    .generate(&arch, loop_len)
                    .expect("SPEC proxy profiles generate valid benchmarks");
                MeasuredBenchmark::new(proxy.name, bench, SampleKind::Spec)
            })
            .collect();
        let spec: Vec<WorkloadSample> = self
            .session
            .run(&measurement_plan(&spec_benchmarks, &all_configs))
            .into_iter()
            .map(|(s, _)| s)
            .collect();

        let extreme_benchmarks: Vec<MeasuredBenchmark> = extreme_cases(&arch, loop_len)
            .expect("extreme cases generate")
            .into_iter()
            .map(|case| MeasuredBenchmark::new(case.name, case.benchmark, SampleKind::Extreme))
            .collect();
        let extreme: Vec<WorkloadSample> = self
            .session
            .run(&measurement_plan(&extreme_benchmarks, &all_configs))
            .into_iter()
            .map(|(s, _)| s)
            .collect();

        let idle_power = self.platform().idle_power();
        let bu = BottomUpModel::train(&training, idle_power)
            .expect("the training set covers every methodology step");

        let td_micro = TopDownModel::train("TD_Micro", training.of_kind(SampleKind::MicroArch))
            .expect("micro-architecture samples exist");
        let td_random = TopDownModel::train("TD_Random", training.of_kind(SampleKind::Random))
            .expect("random samples exist");
        let td_spec = TopDownModel::train("TD_SPEC", spec.iter()).expect("SPEC samples exist");

        let models: Vec<Box<dyn PowerModel>> =
            vec![Box::new(td_micro), Box::new(td_random), Box::new(td_spec), Box::new(bu.clone())];
        ModelStudy { training, spec, extreme, idle_power, bu, models }
    }

    /// Runs the per-instruction bootstrap (in parallel, through the session) and
    /// assembles the Table 3 taxonomy.
    pub fn taxonomy_study(&self) -> TaxonomyStudy {
        let _span = mp_telemetry::span("exp.taxonomy_study");
        let options = BootstrapOptions {
            loop_instructions: self.scale.loop_instructions().min(512),
            config: CmpSmtConfig::new(self.platform().uarch().max_cores, SmtMode::Smt1),
            include: self.scale.bootstrap_instructions(),
        };
        let (props, records) = self
            .session
            .bootstrap(options)
            .expect("bootstrap generation is infallible for the built-in ISA");
        let table = Table3::from_bootstrap(self.platform().uarch(), &records, 3);
        TaxonomyStudy { records, props, table }
    }

    /// Runs the max-power stressmark study.  `spec_max_power` is the normalisation
    /// baseline (the maximum power observed while running the SPEC proxies, from
    /// [`ModelStudy::spec`]); `props` is the bootstrapped table driving the IPC×EPI
    /// heuristic (from [`TaxonomyStudy::props`]).
    pub fn stressmark_study(
        &self,
        spec_max_power: f64,
        props: &InstrPropsTable,
    ) -> StressmarkStudy {
        let _span = mp_telemetry::span("exp.stressmark_study");
        let arch = self.platform().uarch();
        let budget = self.scale.stressmark_budget();
        let smt_modes = match self.scale {
            ExperimentScale::Quick => vec![SmtMode::Smt4],
            _ => arch.smt_modes.clone(),
        };
        // The stressmarks and the SPEC normalisation baseline must run on the same number
        // of cores, otherwise the comparison is meaningless.  The search shares the
        // driver's memoizing session, so its candidate measurements dedupe against every
        // other figure of the run.
        let cores = self.scale.cores().into_iter().max().unwrap_or(arch.max_cores);
        let search = StressmarkSearch::with_session(&self.session)
            .with_cores(cores)
            .with_loop_instructions(self.scale.loop_instructions().min(384))
            .with_smt_modes(smt_modes.clone());

        let mut report = Figure9Report::new(spec_max_power);

        // DAXPY baselines: one batch of kernel × SMT-mode jobs through the session.
        let daxpy = daxpy_kernels(arch, self.scale.loop_instructions().min(384))
            .expect("DAXPY kernels generate");
        let daxpy_jobs: Vec<(&microprobe::ir::MicroBenchmark, CmpSmtConfig)> = daxpy
            .iter()
            .flat_map(|bench| {
                smt_modes.iter().map(move |&mode| (bench, CmpSmtConfig::new(cores, mode)))
            })
            .collect();
        let daxpy_measured = self.session.measure_batch(&daxpy_jobs);
        // Pair measurements back structurally: the jobs were laid out kernel-major with
        // one entry per SMT mode, so chunking by the mode count recovers each kernel's
        // sweep regardless of how either list is built above.
        let daxpy_results: Vec<_> = daxpy
            .iter()
            .zip(daxpy_measured.chunks(smt_modes.len()))
            .map(|(bench, sweep)| {
                let mut best_power = 0.0f64;
                let mut best_ipc = 0.0;
                let mut best_mode = SmtMode::Smt1;
                for (&mode, m) in smt_modes.iter().zip(sweep) {
                    if m.average_power() > best_power {
                        best_power = m.average_power();
                        best_ipc = m.chip_ipc();
                        best_mode = mode;
                    }
                }
                mp_stressmark::StressmarkResult {
                    sequence: vec![bench.name().to_owned()],
                    power: best_power,
                    ipc: best_ipc,
                    best_mode,
                }
            })
            .collect();
        report.add_set("DAXPY", &daxpy_results);

        // Expert manual set.
        let manual =
            search.evaluate_set(&expert_manual_set(arch)).expect("expert sequences generate");
        report.add_set("Expert manual", &manual);

        // Expert DSE set (budget-limited outside the full scale).
        let mut expert_candidates = expert_dse_sequences(arch);
        if let Some(budget) = budget {
            expert_candidates.truncate(budget);
        }
        let expert_results =
            search.evaluate_set(&expert_candidates).expect("expert DSE sequences generate");
        let max_dse = expert_results.iter().map(|r| r.power).fold(f64::NEG_INFINITY, f64::max);
        let min_dse = expert_results.iter().map(|r| r.power).fold(f64::INFINITY, f64::min);
        report.add_set("Expert DSE", &expert_results);

        // MicroProbe set: instructions selected by the IPC×EPI heuristic.
        let mut heuristic_candidates = microprobe_sequences(arch, props);
        if heuristic_candidates.is_empty() {
            heuristic_candidates = expert_dse_sequences(arch);
        }
        if let Some(budget) = budget {
            heuristic_candidates.truncate(budget);
        }
        let heuristic_results =
            search.evaluate_set(&heuristic_candidates).expect("heuristic sequences generate");
        report.add_set("MicroProbe", &heuristic_results);

        StressmarkStudy { report, order_spread: max_dse / min_dse }
    }

    // --------------------------------------------------------------------- the figures

    /// Table 2: the generated training suite summary.
    pub fn table2(&self) -> String {
        let _span = mp_telemetry::span("exp.table2");
        let arch = self.platform().uarch().clone();
        let suite = TrainingSuite::generate(
            &arch,
            TrainingOptions::reduced(self.scale.training_scale(), self.scale.loop_instructions()),
        )
        .expect("training suite generates");
        let mut out = String::new();
        let _ = writeln!(out, "# Table 2 — automatically generated training micro-benchmarks");
        let _ = writeln!(
            out,
            "{:<16} {:<22} {:>6} {:>14}",
            "name", "units stressed", "count", "paper count"
        );
        let mut total = 0;
        let mut paper_total = 0;
        for (name, units, count) in suite.table2_rows() {
            let family = suite
                .benchmarks()
                .iter()
                .find(|b| b.family.name() == name)
                .map(|b| b.family)
                .expect("family has at least one benchmark");
            let _ = writeln!(out, "{name:<16} {units:<22} {count:>6} {:>14}", family.paper_count());
            total += count;
            paper_total += family.paper_count();
        }
        let _ = writeln!(out, "{:<16} {:<22} {total:>6} {paper_total:>14}", "TOTAL", "");
        out
    }

    /// Figure 5a: per-SPEC-benchmark real vs predicted power with the component
    /// breakdown, on the 4-core SMT4 configuration.
    pub fn fig5a(&self, study: &ModelStudy) -> String {
        let config = CmpSmtConfig::new(
            4.min(self.scale.cores().iter().copied().max().unwrap_or(4)),
            SmtMode::Smt4,
        );
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# Figure 5a — SPEC power breakdown, real vs predicted (CMP-SMT {})",
            config.label()
        );
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>9} {:>7} | {:>8} {:>8} {:>6} {:>6} {:>8}",
            "benchmark", "real", "predicted", "err%", "WI", "uncore", "CMP", "SMT", "dynamic"
        );
        for sample in study.spec.iter().filter(|s| s.config == config) {
            let breakdown = study.bu.decompose(sample);
            let predicted = breakdown.total();
            let err = 100.0 * (predicted - sample.power).abs() / sample.power;
            let _ = writeln!(
                out,
                "{:<12} {:>8.2} {:>9.2} {:>6.1}% | {:>8.2} {:>8.2} {:>6.2} {:>6.2} {:>8.2}",
                sample.name,
                sample.power,
                predicted,
                err,
                breakdown.workload_independent,
                breakdown.uncore,
                breakdown.cmp_effect,
                breakdown.smt_effect,
                breakdown.dynamic
            );
        }
        out
    }

    /// Figure 5b: PAAE of the bottom-up model per CMP-SMT configuration.
    pub fn fig5b(&self, study: &ModelStudy) -> String {
        let (per_config, mean) =
            per_config_paae(&study.bu, study.spec.iter()).expect("SPEC samples exist");
        let mut out = String::new();
        let _ = writeln!(out, "# Figure 5b — PAAE of the bottom-up model on the SPEC proxies");
        let _ = writeln!(out, "{:<8} {:>8}", "config", "PAAE%");
        for (config, value) in &per_config {
            let _ = writeln!(out, "{:<8} {:>7.2}%", config.label(), value);
        }
        let _ = writeln!(out, "{:<8} {:>7.2}%", "Mean", mean);
        out
    }

    /// Figure 6: PAAE of the four models per configuration.
    pub fn fig6(&self, study: &ModelStudy) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# Figure 6 — PAAE of TD_Micro / TD_Random / TD_SPEC / BU on the SPEC proxies"
        );
        let _ = write!(out, "{:<8}", "config");
        for model in &study.models {
            let _ = write!(out, " {:>10}", model.name());
        }
        let _ = writeln!(out);
        for config in self.configs() {
            let samples: Vec<&WorkloadSample> =
                study.spec.iter().filter(|s| s.config == config).collect();
            if samples.is_empty() {
                continue;
            }
            let _ = write!(out, "{:<8}", config.label());
            for model in &study.models {
                let value = paae(model.as_ref(), samples.iter().copied()).expect("non-empty");
                let _ = write!(out, " {:>9.2}%", value);
            }
            let _ = writeln!(out);
        }
        let _ = write!(out, "{:<8}", "Mean");
        for model in &study.models {
            let value = paae(model.as_ref(), study.spec.iter()).expect("non-empty");
            let _ = write!(out, " {:>9.2}%", value);
        }
        let _ = writeln!(out);
        out
    }

    /// Figure 7: PAAE of the four models on the extreme-activity cases.
    pub fn fig7(&self, study: &ModelStudy) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Figure 7 — PAAE on the extreme activity cases");
        let _ = write!(out, "{:<14}", "case");
        for model in &study.models {
            let _ = write!(out, " {:>10}", model.name());
        }
        let _ = writeln!(out);
        let mut case_names: Vec<String> = study
            .extreme
            .iter()
            .map(|s| s.name.split('-').next().unwrap_or(&s.name).to_owned())
            .collect();
        case_names.sort();
        case_names.dedup();
        for case in &case_names {
            let samples: Vec<&WorkloadSample> =
                study.extreme.iter().filter(|s| s.name.starts_with(case.as_str())).collect();
            let _ = write!(out, "{:<14}", case);
            for model in &study.models {
                let value = paae(model.as_ref(), samples.iter().copied()).expect("non-empty");
                let _ = write!(out, " {:>9.2}%", value);
            }
            let _ = writeln!(out);
        }
        let _ = write!(out, "{:<14}", "Mean");
        for model in &study.models {
            let value = paae(model.as_ref(), study.extreme.iter()).expect("non-empty");
            let _ = write!(out, " {:>9.2}%", value);
        }
        let _ = writeln!(out);
        out
    }

    /// Figure 8: average per-component power breakdown of the SPEC proxies per
    /// configuration (percentages).
    pub fn fig8(&self, study: &ModelStudy) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Figure 8 — average SPEC power breakdown per configuration (%)");
        let _ = writeln!(
            out,
            "{:<8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "config", "WI", "Uncore", "CMP", "SMT", "Dynamic"
        );
        for config in self.configs() {
            let samples: Vec<&WorkloadSample> =
                study.spec.iter().filter(|s| s.config == config).collect();
            if samples.is_empty() {
                continue;
            }
            let mut acc = [0.0f64; 5];
            for sample in &samples {
                let pct = study.bu.decompose(sample).percentages();
                for (a, p) in acc.iter_mut().zip(pct) {
                    *a += p;
                }
            }
            for a in &mut acc {
                *a /= samples.len() as f64;
            }
            let _ = writeln!(
                out,
                "{:<8} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
                config.label(),
                acc[0],
                acc[1],
                acc[2],
                acc[3],
                acc[4]
            );
        }
        out
    }

    /// Table 3: the EPI-based instruction taxonomy.
    pub fn table3(&self, study: &TaxonomyStudy) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Table 3 — EPI-based instruction taxonomy (8-core SMT1)");
        out.push_str(&study.table.to_table());
        let _ = writeln!(
            out,
            "max intra-category EPI spread: {:.0}%",
            study.table.max_category_spread() * 100.0
        );
        out
    }

    /// Figure 9: the max-power stressmark comparison.
    pub fn fig9(&self, study: &StressmarkStudy) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Figure 9 — max-power stressmarks, normalised to the SPEC maximum");
        out.push_str(&study.report.to_table());
        if let Some(best) = study.report.best() {
            let _ = writeln!(
                out,
                "best set: {} exceeds the SPEC maximum by {:.1}%",
                best.set,
                (best.max - 1.0) * 100.0
            );
        }
        let _ = writeln!(
            out,
            "instruction-order power spread within the Expert DSE set: {:.1}%",
            (study.order_spread - 1.0) * 100.0
        );
        out
    }

    /// Runs every experiment and concatenates the reports.
    pub fn run_all(&self) -> String {
        let _span = mp_telemetry::span("exp.run_all");
        let mut out = String::new();
        out.push_str(&self.table2());
        out.push('\n');
        let model_study = self.model_study();
        out.push_str(&self.fig5a(&model_study));
        out.push('\n');
        out.push_str(&self.fig5b(&model_study));
        out.push('\n');
        out.push_str(&self.fig6(&model_study));
        out.push('\n');
        out.push_str(&self.fig7(&model_study));
        out.push('\n');
        out.push_str(&self.fig8(&model_study));
        out.push('\n');
        let taxonomy = self.taxonomy_study();
        out.push_str(&self.table3(&taxonomy));
        out.push('\n');
        let spec_max = model_study.spec.iter().map(|s| s.power).fold(f64::NEG_INFINITY, f64::max);
        let stressmark = self.stressmark_study(spec_max, &taxonomy.props);
        out.push_str(&self.fig9(&stressmark));
        out.push('\n');
        // Deliberately omits the worker count: run_all output must stay byte-identical
        // across MP_THREADS settings (the summary line is scheduling-independent).
        let _ = writeln!(out, "{}", self.session.stats().summary_line());
        out
    }
}
