#!/usr/bin/env bash
# Runs the workspace's criterion bench targets and records the results as a
# machine-readable snapshot `BENCH_<rev>.json`, so the performance trajectory of the
# simulator (and everything built on it) has data points across revisions.
#
# The vendored criterion stub appends one JSON object per benchmark (JSON-lines) to
# the file named by MP_BENCH_JSON; this script wraps those lines into a single JSON
# document carrying the revision, dirty flag and timestamp.
#
# The snapshot file is named after the HEAD revision (or an explicit --label); the
# dirty state is *recorded inside* the JSON rather than baked into the filename, so a
# re-run after committing overwrites the provisional snapshot instead of stranding a
# `BENCH_<rev>-dirty.json` next to it.
#
# Usage:
#   scripts/bench_json.sh [--label NAME] [--compare OLD.json] [output-dir] \
#                         [cargo bench args...]
#
# Extra cargo args *replace* the default `--workspace` (cargo rejects mixing
# `--workspace` with `-p`), so a subset run is e.g.
# `scripts/bench_json.sh artifacts -p mp-bench --bench runtime --bench dse`.
#
# Examples:
#   scripts/bench_json.sh                      # all bench targets -> ./BENCH_<rev>.json
#   scripts/bench_json.sh artifacts -p mp-bench --bench sim_hot_loop
#   scripts/bench_json.sh --label pr7 benchmarks
#   scripts/bench_json.sh --compare benchmarks/BENCH_aed36b8.json benchmarks
#   MP_BENCH_SAMPLES=3 scripts/bench_json.sh   # quick smoke numbers
set -euo pipefail

cd "$(dirname "$0")/.."

label=""
compare=""
while [[ "${1:-}" == --* || "${1:-}" == "-l" ]]; do
    case "$1" in
        --label|-l)
            label="${2:?--label requires a value}"
            shift 2
            ;;
        --compare)
            compare="${2:?--compare requires an old BENCH_<rev>.json}"
            [[ -f "$compare" ]] || { echo "error: --compare file not found: $compare" >&2; exit 2; }
            shift 2
            ;;
        *)
            echo "error: unknown option $1" >&2
            exit 2
            ;;
    esac
done

out_dir="${1:-.}"
shift || true

rev="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
dirty=false
if ! git diff --quiet HEAD 2>/dev/null; then
    dirty=true
    echo "warning: working tree is dirty — snapshot records rev ${rev} plus uncommitted changes" >&2
fi
out_file="${out_dir}/BENCH_${label:-$rev}.json"
lines_file="$(mktemp)"
trap 'rm -f "$lines_file"' EXIT

mkdir -p "$out_dir"
MP_BENCH_JSON="$lines_file" cargo bench "${@:---workspace}"

{
    printf '{\n'
    printf '  "rev": "%s",\n' "$rev"
    printf '  "dirty": %s,\n' "$dirty"
    if [[ -n "$label" ]]; then
        printf '  "label": "%s",\n' "$label"
    fi
    printf '  "recorded_utc": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "samples_env": "%s",\n' "${MP_BENCH_SAMPLES:-default}"
    printf '  "results": [\n'
    # Join the JSON lines with commas.
    sed '$!s/$/,/' "$lines_file" | sed 's/^/    /'
    printf '  ]\n'
    printf '}\n'
} > "$out_file"

echo "wrote $out_file ($(wc -l < "$lines_file") benchmarks)"

if [[ -n "$compare" ]]; then
    echo
    cargo run -q --release -p mp-bench --bin bench_gate -- "$compare" "$out_file"
fi
