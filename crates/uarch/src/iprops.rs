//! Per-instruction implementation properties (latency, throughput, stressed units, EPI).

use std::collections::HashMap;

use mp_isa::{Isa, OpcodeId, Unit};

/// Implementation properties of one instruction on the target micro-architecture.
///
/// The static fields (latency, reciprocal throughput, stressed units) come from the
/// machine description; the measured fields (`epi`, `avg_power`, `measured_ipc`) start
/// out as `None` and are filled in by MicroProbe's automatic bootstrap process
/// (Section 2.1.2 of the paper), which runs per-instruction micro-benchmarks and reads
/// the performance counters and power sensors.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrProps {
    /// Instruction mnemonic these properties belong to.
    pub mnemonic: String,
    /// Execution latency in cycles (for memory operations: the non-memory part; the
    /// cache-level latency is added by the memory hierarchy).
    pub latency_cycles: u32,
    /// Reciprocal throughput per execution pipe (cycles per instruction per pipe).
    pub recip_throughput: f64,
    /// Functional units stressed by the instruction.
    pub units: Vec<Unit>,
    /// Energy per instruction in normalized energy units, measured by the bootstrap.
    pub epi: Option<f64>,
    /// Average sustained chip power when running only this instruction, normalized,
    /// measured by the bootstrap.
    pub avg_power: Option<f64>,
    /// Core IPC measured by the bootstrap on the throughput (no-dependency) benchmark.
    pub measured_ipc: Option<f64>,
    /// Latency in cycles derived by the bootstrap from the dependency-chain benchmark.
    pub measured_latency: Option<f64>,
}

impl InstrProps {
    /// Creates the static part of the properties (measured fields unset).
    pub fn new(
        mnemonic: impl Into<String>,
        latency_cycles: u32,
        recip_throughput: f64,
        units: Vec<Unit>,
    ) -> Self {
        assert!(recip_throughput > 0.0, "reciprocal throughput must be positive");
        Self {
            mnemonic: mnemonic.into(),
            latency_cycles,
            recip_throughput,
            units,
            epi: None,
            avg_power: None,
            measured_ipc: None,
            measured_latency: None,
        }
    }

    /// Returns `true` once the bootstrap has filled in the measured energy fields.
    pub fn is_bootstrapped(&self) -> bool {
        self.epi.is_some() && self.measured_ipc.is_some()
    }

    /// The IPC×EPI product used by the max-power stressmark selection heuristic
    /// (Section 6), or `None` before bootstrap.
    pub fn ipc_epi_product(&self) -> Option<f64> {
        Some(self.measured_ipc? * self.epi?)
    }
}

/// Table of per-instruction properties, keyed by mnemonic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InstrPropsTable {
    props: HashMap<String, InstrProps>,
}

impl InstrPropsTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions described.
    pub fn len(&self) -> usize {
        self.props.len()
    }

    /// Returns `true` if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }

    /// Inserts (or replaces) the properties of one instruction.
    pub fn insert(&mut self, props: InstrProps) {
        self.props.insert(props.mnemonic.clone(), props);
    }

    /// Properties of an instruction, if described.
    pub fn get(&self, mnemonic: &str) -> Option<&InstrProps> {
        self.props.get(mnemonic)
    }

    /// Mutable properties of an instruction, if described (used by the bootstrap to fill
    /// in measured values).
    pub fn get_mut(&mut self, mnemonic: &str) -> Option<&mut InstrProps> {
        self.props.get_mut(mnemonic)
    }

    /// Iterates over all entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &InstrProps> {
        self.props.values()
    }

    /// Fraction of entries whose measured fields have been bootstrapped.
    pub fn bootstrap_coverage(&self) -> f64 {
        if self.props.is_empty() {
            return 0.0;
        }
        let done = self.props.values().filter(|p| p.is_bootstrapped()).count();
        done as f64 / self.props.len() as f64
    }
}

/// [`OpcodeId`]-indexed view of an [`InstrPropsTable`]: a dense `Vec` lookup instead of
/// a `&str`-keyed hash, for per-issue hot paths (the simulator's pre-decoder).
///
/// The view snapshots the table at build time; bootstrap updates to the measured
/// fields of the underlying mnemonic-keyed table (which stays the source of truth and
/// the string API for existing callers) are not reflected in views built earlier.
#[derive(Debug, Clone, PartialEq)]
pub struct OpcodePropsTable {
    props: Vec<InstrProps>,
}

impl OpcodePropsTable {
    /// Builds the dense view for `isa`, one entry per [`OpcodeId`].
    ///
    /// # Panics
    ///
    /// Panics if the table does not describe some instruction of `isa` — machine
    /// descriptions guarantee full coverage, so a hole is a construction bug.
    pub fn build(isa: &Isa, table: &InstrPropsTable) -> Self {
        let props = isa
            .instructions()
            .map(|def| {
                table
                    .get(def.mnemonic())
                    .unwrap_or_else(|| {
                        panic!("no micro-architecture properties for `{}`", def.mnemonic())
                    })
                    .clone()
            })
            .collect();
        Self { props }
    }

    /// Properties of the instruction definition identified by `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the ISA the view was built from.
    pub fn get(&self, id: OpcodeId) -> &InstrProps {
        &self.props[id.index()]
    }

    /// Number of instructions described.
    pub fn len(&self) -> usize {
        self.props.len()
    }

    /// Returns `true` if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }
}

impl FromIterator<InstrProps> for InstrPropsTable {
    fn from_iter<T: IntoIterator<Item = InstrProps>>(iter: T) -> Self {
        let mut table = Self::new();
        for p in iter {
            table.insert(p);
        }
        table
    }
}

impl Extend<InstrProps> for InstrPropsTable {
    fn extend<T: IntoIterator<Item = InstrProps>>(&mut self, iter: T) {
        for p in iter {
            self.insert(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut table = InstrPropsTable::new();
        table.insert(InstrProps::new("add", 1, 1.0, vec![Unit::Fxu, Unit::Lsu]));
        assert_eq!(table.len(), 1);
        assert!(table.get("add").is_some());
        assert!(table.get("sub").is_none());
        assert!(!table.get("add").unwrap().is_bootstrapped());
    }

    #[test]
    fn bootstrap_fills_measured_fields() {
        let mut table = InstrPropsTable::new();
        table.insert(InstrProps::new("mulld", 4, 1.4, vec![Unit::Fxu]));
        {
            let p = table.get_mut("mulld").unwrap();
            p.epi = Some(2.6);
            p.measured_ipc = Some(1.4);
        }
        let p = table.get("mulld").unwrap();
        assert!(p.is_bootstrapped());
        assert!((p.ipc_epi_product().unwrap() - 3.64).abs() < 1e-9);
        assert!((table.bootstrap_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut table: InstrPropsTable =
            vec![InstrProps::new("a", 1, 1.0, vec![Unit::Fxu])].into_iter().collect();
        table.extend(vec![InstrProps::new("b", 2, 2.0, vec![Unit::Vsu])]);
        assert_eq!(table.len(), 2);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_throughput_is_rejected() {
        let _ = InstrProps::new("bad", 1, 0.0, vec![Unit::Fxu]);
    }

    #[test]
    fn opcode_view_agrees_with_mnemonic_lookup() {
        let m = crate::power7();
        let dense = OpcodePropsTable::build(&m.isa, &m.iprops);
        assert_eq!(dense.len(), m.isa.len());
        assert!(!dense.is_empty());
        for (id, def) in m.isa.entries() {
            assert_eq!(dense.get(id), m.props(def.mnemonic()), "{}", def.mnemonic());
        }
    }

    #[test]
    #[should_panic(expected = "no micro-architecture properties")]
    fn opcode_view_requires_full_coverage() {
        let m = crate::power7();
        let _ = OpcodePropsTable::build(&m.isa, &InstrPropsTable::new());
    }
}
