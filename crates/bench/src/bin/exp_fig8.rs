//! Regenerates Figure 8: average per-component power breakdown per configuration.

use mp_bench::{ExperimentScale, Experiments};

fn main() {
    let scale = ExperimentScale::from_arg(std::env::args().nth(1).as_deref());
    let experiments = Experiments::new(scale);
    let study = experiments.model_study();
    println!("{}", experiments.fig8(&study));
    mp_bench::report::conclude(experiments.session());
}
