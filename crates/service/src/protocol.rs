//! The `MPSVC1` wire protocol: length-prefixed, checksummed, little-endian frames.
//!
//! The framing follows the record conventions of [`mp_runtime::store`]: a fixed magic
//! that doubles as the format version (bump the trailing digit on any layout change —
//! old peers then fail the magic check instead of misparsing), an explicit payload
//! length, and an FNV-1a checksum over the payload so truncated or bit-rotted frames
//! are *detected*, never interpreted.  Measurements cross the wire in the store's own
//! payload encoding ([`mp_runtime::store::encode_measurement`]) — one codec end to
//! end, whether a measurement is persisted or served remotely.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! magic   6 bytes  b"MPSVC1"
//! type    1 byte   message type (below)
//! flags   1 byte   reserved, must be zero
//! len     8 bytes  payload length
//! check   8 bytes  FNV-1a over the payload bytes
//! payload len bytes
//! ```
//!
//! Messages: `SubmitBatch` (client → daemon: spec digest + a batch of jobs),
//! `Results` (daemon → client: one keyed ok/err entry per job, in request order),
//! `StatsRequest`/`StatsReply` (daemon identity + cumulative counters — also the
//! connect-time digest handshake), `Shutdown`/`ShutdownAck`, and `ErrorReply` for any
//! frame the daemon refuses (protocol errors never kill the daemon).
//!
//! Kernel instructions are encoded by raw [`OpcodeId`] index.  That is only meaningful
//! between peers whose machine specs are byte-identical, which is exactly what the
//! digest handshake enforces: [`spec_digest`](mp_uarch::MicroArchitecture) covers the
//! ISA text, and identical ISA text implies identical opcode numbering.  The decoder
//! still re-validates everything structurally (bounds-checked reads, ISA-checked
//! operands via [`Instruction::new`]) so a corrupt or hostile frame yields a clean
//! per-connection error.

use std::io::{Read, Write};

use microprobe::ir::MicroBenchmark;
use mp_isa::{Instruction, Isa, MemAccess, Operand, RegRef, RegisterFile};
use mp_sim::{DataProfile, Kernel, Measurement};
use mp_uarch::{CmpSmtConfig, SmtMode};

/// Frame magic: file-format identity and version in one.
pub const MAGIC: &[u8; 6] = b"MPSVC1";

/// Frame header length: magic(6) + type(1) + flags(1) + len(8) + checksum(8).
pub const HEADER_LEN: usize = 24;

/// Hard cap on a frame payload.  No legitimate batch approaches this; it bounds the
/// allocation a corrupt length field could request.
pub const MAX_FRAME_LEN: u64 = 1 << 28;

/// Hard cap on jobs per `SubmitBatch` frame; clients chunk larger submissions.
pub const MAX_JOBS_PER_FRAME: usize = 1024;

/// Caps on decoded vector lengths inside a batch (same spirit as the store's
/// `MAX_VEC_LEN`: bound what corruption can ask for).
const MAX_NAME_LEN: usize = 1 << 12;
const MAX_KERNEL_LEN: u32 = 1 << 20;
const MAX_CORES: u32 = 1 << 12;

/// Message types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MessageType {
    /// Client → daemon: a batch of measurement jobs.
    SubmitBatch = 1,
    /// Daemon → client: one result per submitted job, in request order.
    Results = 2,
    /// Client → daemon: identity/stats request (also the connect handshake).
    StatsRequest = 3,
    /// Daemon → client: spec digest plus cumulative counters.
    StatsReply = 4,
    /// Client → daemon: stop accepting and exit once in-flight batches settle.
    Shutdown = 5,
    /// Daemon → client: shutdown acknowledged.
    ShutdownAck = 6,
    /// Daemon → client: the previous frame was refused (message says why).
    ErrorReply = 7,
}

impl MessageType {
    fn from_u8(value: u8) -> Option<Self> {
        match value {
            1 => Some(Self::SubmitBatch),
            2 => Some(Self::Results),
            3 => Some(Self::StatsRequest),
            4 => Some(Self::StatsReply),
            5 => Some(Self::Shutdown),
            6 => Some(Self::ShutdownAck),
            7 => Some(Self::ErrorReply),
            _ => None,
        }
    }
}

/// FNV-1a over the payload bytes — cheap, dependency-free, and plenty to detect torn
/// tails and bit rot (an integrity check, not an adversarial MAC); same function and
/// constants as the store's record checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf29ce484222325u64, |h, &b| (h ^ u64::from(b)).wrapping_mul(0x100000001b3))
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// Transport failure (includes mid-frame EOF).
    Io(std::io::Error),
    /// The bytes are not a valid frame (bad magic, bad checksum, oversized, unknown
    /// type).  The connection cannot be resynchronised after this.
    Corrupt(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Closed => write!(f, "connection closed"),
            Self::Io(error) => write!(f, "frame io error: {error}"),
            Self::Corrupt(message) => write!(f, "corrupt frame: {message}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame (header + payload) and flushes.
pub fn write_frame(
    writer: &mut impl Write,
    message: MessageType,
    payload: &[u8],
) -> std::io::Result<()> {
    let mut header = [0u8; HEADER_LEN];
    header[..6].copy_from_slice(MAGIC);
    header[6] = message as u8;
    header[7] = 0;
    header[8..16].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    header[16..24].copy_from_slice(&fnv1a(payload).to_le_bytes());
    writer.write_all(&header)?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one frame.  A clean EOF *before the first header byte* is
/// [`FrameError::Closed`]; EOF mid-frame is an [`FrameError::Io`] (truncation); any
/// structural violation is [`FrameError::Corrupt`].
pub fn read_frame(reader: &mut impl Read) -> Result<(MessageType, Vec<u8>), FrameError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < header.len() {
        match reader.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-header",
                )))
            }
            Ok(n) => filled += n,
            Err(error) if error.kind() == std::io::ErrorKind::Interrupted => {}
            Err(error) => return Err(FrameError::Io(error)),
        }
    }
    if &header[..6] != MAGIC {
        return Err(FrameError::Corrupt("bad magic".to_owned()));
    }
    let message = MessageType::from_u8(header[6])
        .ok_or_else(|| FrameError::Corrupt(format!("unknown message type {}", header[6])))?;
    if header[7] != 0 {
        return Err(FrameError::Corrupt(format!("nonzero flags byte {}", header[7])));
    }
    let len = u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice"));
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Corrupt(format!("payload length {len} exceeds {MAX_FRAME_LEN}")));
    }
    let checksum = u64::from_le_bytes(header[16..24].try_into().expect("8-byte slice"));
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload).map_err(FrameError::Io)?;
    if fnv1a(&payload) != checksum {
        return Err(FrameError::Corrupt("payload checksum mismatch".to_owned()));
    }
    Ok((message, payload))
}

// ---------------------------------------------------------------------------
// Little-endian payload primitives (the store's record conventions).
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// A bounds-checked little-endian reader; every accessor fails cleanly past the end,
/// so decoding truncated bytes can only ever yield a "corrupt" verdict, not a panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).ok_or("length overflow")?;
        let slice = self.bytes.get(self.pos..end).ok_or("truncated payload")?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2-byte slice")))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    fn u128(&mut self) -> Result<u128, String> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16-byte slice")))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    fn f64(&mut self) -> Result<f64, String> {
        self.u64().map(f64::from_bits)
    }

    fn bytes(&mut self, cap: usize) -> Result<&'a [u8], String> {
        let len = self.u32()? as usize;
        if len > cap {
            return Err(format!("length {len} exceeds cap {cap}"));
        }
        self.take(len)
    }

    fn finish(&self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes", self.bytes.len() - self.pos))
        }
    }
}

// ---------------------------------------------------------------------------
// Job and batch encoding.
// ---------------------------------------------------------------------------

/// One decoded measurement job.
#[derive(Debug, Clone, PartialEq)]
pub struct WireJob {
    /// The client-side content key; echoed back on the result entry.
    pub key: u128,
    /// The benchmark to run.
    pub benchmark: MicroBenchmark,
    /// The CMP-SMT configuration to run it on.
    pub config: CmpSmtConfig,
}

fn file_to_u8(file: RegisterFile) -> u8 {
    match file {
        RegisterFile::Gpr => 0,
        RegisterFile::Fpr => 1,
        RegisterFile::Vsr => 2,
        RegisterFile::Vr => 3,
        RegisterFile::Cr => 4,
        RegisterFile::Xer => 5,
        RegisterFile::Lr => 6,
        RegisterFile::Ctr => 7,
        RegisterFile::Fpscr => 8,
        RegisterFile::Spr => 9,
    }
}

fn file_from_u8(value: u8) -> Result<RegisterFile, String> {
    Ok(match value {
        0 => RegisterFile::Gpr,
        1 => RegisterFile::Fpr,
        2 => RegisterFile::Vsr,
        3 => RegisterFile::Vr,
        4 => RegisterFile::Cr,
        5 => RegisterFile::Xer,
        6 => RegisterFile::Lr,
        7 => RegisterFile::Ctr,
        8 => RegisterFile::Fpscr,
        9 => RegisterFile::Spr,
        _ => return Err(format!("unknown register file {value}")),
    })
}

fn profile_to_u8(profile: DataProfile) -> u8 {
    match profile {
        DataProfile::Random => 0,
        DataProfile::Constant => 1,
        DataProfile::Zeros => 2,
    }
}

fn profile_from_u8(value: u8) -> Result<DataProfile, String> {
    Ok(match value {
        0 => DataProfile::Random,
        1 => DataProfile::Constant,
        2 => DataProfile::Zeros,
        _ => return Err(format!("unknown data profile {value}")),
    })
}

fn encode_operand(out: &mut Vec<u8>, operand: &Operand) {
    match operand {
        Operand::Reg(reg) => {
            put_u8(out, 0);
            put_u8(out, file_to_u8(reg.file));
            put_u16(out, reg.index);
        }
        Operand::Imm(v) => {
            put_u8(out, 1);
            put_i64(out, *v);
        }
        Operand::Displacement(v) => {
            put_u8(out, 2);
            put_i64(out, *v);
        }
        Operand::BranchTarget(v) => {
            put_u8(out, 3);
            put_i64(out, *v);
        }
        Operand::CrField(v) => {
            put_u8(out, 4);
            put_u8(out, *v);
        }
    }
}

fn decode_operand(cur: &mut Cursor<'_>) -> Result<Operand, String> {
    Ok(match cur.u8()? {
        0 => {
            let file = file_from_u8(cur.u8()?)?;
            let index = cur.u16()?;
            if index >= file.count() {
                return Err(format!("register index {index} out of range for {file:?}"));
            }
            Operand::Reg(RegRef { file, index })
        }
        1 => Operand::Imm(cur.i64()?),
        2 => Operand::Displacement(cur.i64()?),
        3 => Operand::BranchTarget(cur.i64()?),
        4 => Operand::CrField(cur.u8()?),
        tag => return Err(format!("unknown operand tag {tag}")),
    })
}

fn encode_job(out: &mut Vec<u8>, key: u128, benchmark: &MicroBenchmark, config: CmpSmtConfig) {
    let kernel = benchmark.kernel();
    put_u128(out, key);
    put_u32(out, config.cores);
    put_u32(out, config.smt.threads_per_core());
    put_bytes(out, kernel.name().as_bytes());
    put_u8(out, profile_to_u8(kernel.data_profile()));
    put_u64(out, kernel.mispredict_rate().to_bits());
    put_u32(out, kernel.len() as u32);
    for instruction in kernel.body() {
        put_u32(out, instruction.opcode().index() as u32);
        match instruction.mem() {
            Some(mem) => {
                put_u8(out, 1);
                put_u64(out, mem.address);
                put_u8(out, mem.bytes);
                put_u8(out, u8::from(mem.is_store));
            }
            None => put_u8(out, 0),
        }
        put_u8(out, instruction.operands().len() as u8);
        for operand in instruction.operands() {
            encode_operand(out, operand);
        }
    }
}

fn decode_job(cur: &mut Cursor<'_>, isa: &Isa) -> Result<WireJob, String> {
    let key = cur.u128()?;
    let cores = cur.u32()?;
    if cores == 0 || cores > MAX_CORES {
        return Err(format!("core count {cores} out of range"));
    }
    let smt = SmtMode::from_threads(cur.u32()?).ok_or("invalid SMT thread count")?;
    let config = CmpSmtConfig::new(cores, smt);
    let name = String::from_utf8(cur.bytes(MAX_NAME_LEN)?.to_vec())
        .map_err(|_| "kernel name is not UTF-8".to_owned())?;
    let profile = profile_from_u8(cur.u8()?)?;
    let mispredict = cur.f64()?;
    if !(0.0..=1.0).contains(&mispredict) {
        return Err(format!("misprediction rate {mispredict} out of [0,1]"));
    }
    let count = cur.u32()?;
    if count == 0 || count > MAX_KERNEL_LEN {
        return Err(format!("kernel length {count} out of range"));
    }
    let mut body = Vec::with_capacity(count as usize);
    for slot in 0..count {
        let opcode_index = cur.u32()? as usize;
        // The ISA owns opcode numbering; the digest handshake guarantees both peers
        // number identically, and this bound check keeps a corrupt index a clean
        // error rather than a panic.
        let (opcode, _) = isa
            .entries()
            .nth(opcode_index)
            .ok_or_else(|| format!("slot {slot}: opcode index {opcode_index} out of range"))?;
        let mem = match cur.u8()? {
            0 => None,
            1 => {
                Some(MemAccess { address: cur.u64()?, bytes: cur.u8()?, is_store: cur.u8()? != 0 })
            }
            flag => return Err(format!("slot {slot}: bad memory flag {flag}")),
        };
        let operand_count = cur.u8()?;
        let mut operands = Vec::with_capacity(usize::from(operand_count));
        for _ in 0..operand_count {
            operands.push(decode_operand(cur)?);
        }
        let instruction = Instruction::new(isa, opcode, operands, mem)
            .map_err(|error| format!("slot {slot}: {error}"))?;
        body.push(instruction);
    }
    let kernel =
        Kernel::new(name, body).with_data_profile(profile).with_mispredict_rate(mispredict);
    Ok(WireJob { key, benchmark: MicroBenchmark::from_kernel(kernel), config })
}

/// Encodes a `SubmitBatch` payload: the client's spec digest, then each job.
pub fn encode_submit_batch(
    digest: u128,
    jobs: &[(&MicroBenchmark, CmpSmtConfig)],
    keys: &[u128],
) -> Vec<u8> {
    assert_eq!(jobs.len(), keys.len(), "one key per job");
    assert!(jobs.len() <= MAX_JOBS_PER_FRAME, "chunk submissions to MAX_JOBS_PER_FRAME");
    let mut out = Vec::with_capacity(64 + jobs.len() * 256);
    put_u128(&mut out, digest);
    put_u64(&mut out, jobs.len() as u64);
    for ((benchmark, config), &key) in jobs.iter().zip(keys) {
        encode_job(&mut out, key, benchmark, *config);
    }
    out
}

/// Decodes a `SubmitBatch` payload against the daemon's ISA.
///
/// # Errors
///
/// Returns a description of the first structural or semantic violation; the caller
/// turns it into an `ErrorReply`.
pub fn decode_submit_batch(payload: &[u8], isa: &Isa) -> Result<(u128, Vec<WireJob>), String> {
    let mut cur = Cursor::new(payload);
    let digest = cur.u128()?;
    let count = cur.u64()?;
    if count as usize > MAX_JOBS_PER_FRAME {
        return Err(format!("batch of {count} jobs exceeds {MAX_JOBS_PER_FRAME} per frame"));
    }
    let mut jobs = Vec::with_capacity(count as usize);
    for _ in 0..count {
        jobs.push(decode_job(&mut cur, isa)?);
    }
    cur.finish()?;
    Ok((digest, jobs))
}

/// One entry of a `Results` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResult {
    /// The job's key, echoed from the submission.
    pub key: u128,
    /// The measurement, or the error that killed this job alone.
    pub outcome: Result<Measurement, String>,
}

/// Encodes a `Results` payload: one keyed ok/err entry per job, in request order.
/// Measurements use the store's payload codec.
pub fn encode_results(results: &[WireResult]) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + results.len() * 256);
    put_u64(&mut out, results.len() as u64);
    for result in results {
        put_u128(&mut out, result.key);
        match &result.outcome {
            Ok(measurement) => {
                put_u8(&mut out, 0);
                put_bytes(&mut out, &mp_runtime::store::encode_measurement(measurement));
            }
            Err(message) => {
                put_u8(&mut out, 1);
                put_bytes(&mut out, message.as_bytes());
            }
        }
    }
    out
}

/// Decodes a `Results` payload.
pub fn decode_results(payload: &[u8]) -> Result<Vec<WireResult>, String> {
    let mut cur = Cursor::new(payload);
    let count = cur.u64()?;
    if count > MAX_JOBS_PER_FRAME as u64 {
        return Err(format!("{count} results exceed {MAX_JOBS_PER_FRAME} per frame"));
    }
    let mut results = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let key = cur.u128()?;
        let outcome = match cur.u8()? {
            0 => {
                let bytes = cur.bytes(MAX_FRAME_LEN as usize)?;
                Ok(mp_runtime::store::decode_measurement(bytes)
                    .ok_or("undecodable measurement payload")?)
            }
            1 => Err(String::from_utf8_lossy(cur.bytes(MAX_NAME_LEN)?).into_owned()),
            tag => return Err(format!("bad result status {tag}")),
        };
        results.push(WireResult { key, outcome });
    }
    cur.finish()?;
    Ok(results)
}

/// A `StatsReply` payload: the daemon's identity and cumulative counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonStats {
    /// The daemon platform's machine-spec digest (the client compatibility check).
    pub digest: u128,
    /// Session jobs submitted (all connections).
    pub submitted: u64,
    /// Session memo/dedup hits.
    pub hits: u64,
    /// Session unique runs (platform runs + store loads).
    pub misses: u64,
    /// Connections accepted since start.
    pub connections: u64,
    /// Cross-connection batches dispatched to the session.
    pub batches: u64,
    /// Jobs received over all `SubmitBatch` frames.
    pub jobs: u64,
}

/// Encodes a `StatsReply` payload.
pub fn encode_stats(stats: &DaemonStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    put_u128(&mut out, stats.digest);
    for value in
        [stats.submitted, stats.hits, stats.misses, stats.connections, stats.batches, stats.jobs]
    {
        put_u64(&mut out, value);
    }
    out
}

/// Decodes a `StatsReply` payload.
pub fn decode_stats(payload: &[u8]) -> Result<DaemonStats, String> {
    let mut cur = Cursor::new(payload);
    let stats = DaemonStats {
        digest: cur.u128()?,
        submitted: cur.u64()?,
        hits: cur.u64()?,
        misses: cur.u64()?,
        connections: cur.u64()?,
        batches: cur.u64()?,
        jobs: cur.u64()?,
    };
    cur.finish()?;
    Ok(stats)
}

/// Encodes an `ErrorReply` payload.
pub fn encode_error(message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + message.len());
    put_bytes(&mut out, message.as_bytes());
    out
}

/// Decodes an `ErrorReply` payload.
pub fn decode_error(payload: &[u8]) -> Result<String, String> {
    let mut cur = Cursor::new(payload);
    let message = String::from_utf8_lossy(cur.bytes(MAX_NAME_LEN)?).into_owned();
    cur.finish()?;
    Ok(message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use microprobe::prelude::*;

    fn sample_benchmark(seed: u64) -> MicroBenchmark {
        let arch = mp_uarch::power7();
        let computes = arch.isa.compute_instructions();
        let mut synth = Synthesizer::new(arch).with_name_prefix("wire").with_seed(seed);
        synth.add_pass(SkeletonPass::endless_loop(16));
        synth.add_pass(InstructionMixPass::uniform(computes));
        synth.synthesize().expect("benchmark synthesizes")
    }

    #[test]
    fn frames_round_trip() {
        let payload = b"arbitrary bytes".to_vec();
        let mut wire = Vec::new();
        write_frame(&mut wire, MessageType::SubmitBatch, &payload).expect("write");
        let (message, decoded) =
            read_frame(&mut wire.as_slice()).expect("well-formed frame reads back");
        assert_eq!(message, MessageType::SubmitBatch);
        assert_eq!(decoded, payload);
    }

    #[test]
    fn empty_payload_frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, MessageType::Shutdown, &[]).expect("write");
        let (message, decoded) = read_frame(&mut wire.as_slice()).expect("reads back");
        assert_eq!(message, MessageType::Shutdown);
        assert!(decoded.is_empty());
    }

    #[test]
    fn clean_eof_is_closed_and_mid_frame_eof_is_io() {
        assert!(matches!(read_frame(&mut [].as_slice()), Err(FrameError::Closed)));
        let mut wire = Vec::new();
        write_frame(&mut wire, MessageType::StatsRequest, b"x").expect("write");
        for cut in 1..wire.len() {
            match read_frame(&mut &wire[..cut]) {
                Err(FrameError::Io(_)) => {}
                other => panic!("truncation at {cut} must be an Io error, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_frames_are_rejected_not_misread() {
        let mut wire = Vec::new();
        write_frame(&mut wire, MessageType::SubmitBatch, b"payload").expect("write");

        let mut bad_magic = wire.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(read_frame(&mut bad_magic.as_slice()), Err(FrameError::Corrupt(_))));

        let mut bad_type = wire.clone();
        bad_type[6] = 200;
        assert!(matches!(read_frame(&mut bad_type.as_slice()), Err(FrameError::Corrupt(_))));

        let mut bad_flags = wire.clone();
        bad_flags[7] = 1;
        assert!(matches!(read_frame(&mut bad_flags.as_slice()), Err(FrameError::Corrupt(_))));

        let mut bad_payload = wire.clone();
        let last = bad_payload.len() - 1;
        bad_payload[last] ^= 0x01;
        assert!(matches!(read_frame(&mut bad_payload.as_slice()), Err(FrameError::Corrupt(_))));

        let mut oversized = wire;
        oversized[8..16].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(matches!(read_frame(&mut oversized.as_slice()), Err(FrameError::Corrupt(_))));
    }

    #[test]
    fn submit_batch_round_trips_exactly() {
        let arch = mp_uarch::power7();
        let digest = arch.spec_digest;
        let benchmarks = [sample_benchmark(1), sample_benchmark(2)];
        let configs = [CmpSmtConfig::new(1, SmtMode::Smt1), CmpSmtConfig::new(4, SmtMode::Smt2)];
        let jobs: Vec<(&MicroBenchmark, CmpSmtConfig)> = benchmarks.iter().zip(configs).collect();
        let keys = [11u128, 22u128];

        let payload = encode_submit_batch(digest, &jobs, &keys);
        let (decoded_digest, decoded) =
            decode_submit_batch(&payload, &arch.isa).expect("round trip");
        assert_eq!(decoded_digest, digest);
        assert_eq!(decoded.len(), 2);
        for ((wire, (benchmark, config)), &key) in decoded.iter().zip(&jobs).zip(&keys) {
            assert_eq!(wire.key, key);
            assert_eq!(wire.config, *config);
            assert_eq!(wire.benchmark.kernel(), benchmark.kernel(), "kernel survives the wire");
        }
    }

    #[test]
    fn corrupt_batches_are_clean_errors() {
        let arch = mp_uarch::power7();
        let bench = sample_benchmark(3);
        let jobs = [(&bench, CmpSmtConfig::new(1, SmtMode::Smt1))];
        let good = encode_submit_batch(arch.spec_digest, &jobs, &[1]);

        // Truncations at every prefix length: never a panic, always Err.
        for cut in 0..good.len() {
            assert!(decode_submit_batch(&good[..cut], &arch.isa).is_err(), "cut at {cut}");
        }
        // Every single-byte corruption either decodes to *something* structurally
        // valid or errors — never panics.  (Flipping a payload byte can land on
        // another valid encoding; the frame checksum is what rejects bit rot in
        // transit.  This loop is about decoder robustness, not detection.)
        for index in 0..good.len() {
            let mut bent = good.clone();
            bent[index] ^= 0xFF;
            let _ = decode_submit_batch(&bent, &arch.isa);
        }
        // An opcode index beyond the ISA is a clean error.
        let mut bad = good.clone();
        // digest(16) + count(8) + key(16) + cores(4) + smt(4) = 48; name len(4) +
        // name + profile(1) + mispredict(8) + kernel len(4), then the first opcode.
        let name_len = u32::from_le_bytes(bad[48..52].try_into().unwrap()) as usize;
        let opcode_at = 52 + name_len + 1 + 8 + 4;
        bad[opcode_at..opcode_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let error = decode_submit_batch(&bad, &arch.isa).expect_err("out-of-range opcode");
        assert!(error.contains("opcode index"), "{error}");
    }

    #[test]
    fn results_round_trip_including_errors() {
        let platform = microprobe::platform::SimPlatform::power7_fast();
        let bench = sample_benchmark(4);
        let measurement = microprobe::platform::Platform::run(
            &platform,
            &bench,
            CmpSmtConfig::new(1, SmtMode::Smt1),
        );
        let results = [
            WireResult { key: 5, outcome: Ok(measurement.clone()) },
            WireResult { key: 6, outcome: Err("injected fault".to_owned()) },
        ];
        let payload = encode_results(&results);
        let decoded = decode_results(&payload).expect("round trip");
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].key, 5);
        assert_eq!(decoded[0].outcome.as_ref().expect("ok entry"), &measurement);
        assert_eq!(decoded[1].outcome.as_ref().expect_err("err entry"), "injected fault");
        for cut in 0..payload.len() {
            assert!(decode_results(&payload[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn stats_and_error_payloads_round_trip() {
        let stats = DaemonStats {
            digest: 0xABCD,
            submitted: 10,
            hits: 4,
            misses: 6,
            connections: 3,
            batches: 2,
            jobs: 10,
        };
        assert_eq!(decode_stats(&encode_stats(&stats)), Ok(stats));
        assert_eq!(decode_error(&encode_error("nope")), Ok("nope".to_owned()));
        assert!(decode_stats(&encode_error("short")).is_err());
    }
}
