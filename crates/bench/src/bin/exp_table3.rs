//! Regenerates Table 3: the EPI-based instruction taxonomy derived by the bootstrap.

use mp_bench::{ExperimentScale, Experiments};

fn main() {
    let scale = ExperimentScale::from_arg(std::env::args().nth(1).as_deref());
    let experiments = Experiments::new(scale);
    let taxonomy = experiments.taxonomy_study();
    println!("{}", experiments.table3(&taxonomy));
    // Scheduling-independent cache statistics: identical for any MP_THREADS setting.
    mp_bench::report::conclude(experiments.session());
}
