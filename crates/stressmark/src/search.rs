//! Evaluation of candidate stressmark sequences on a measurement platform.

use microprobe::dse::{ExhaustiveSearch, SearchResult};
use microprobe::prelude::*;
use mp_isa::OpcodeId;
use mp_uarch::{CmpSmtConfig, SmtMode};

/// A candidate: the 6-instruction sequence to replicate through the loop.
pub type SequenceCandidate = Vec<OpcodeId>;

/// The measured outcome of one candidate stressmark.
#[derive(Debug, Clone, PartialEq)]
pub struct StressmarkResult {
    /// Mnemonics of the candidate sequence, in order.
    pub sequence: Vec<String>,
    /// Maximum average chip power observed across the evaluated SMT modes.
    pub power: f64,
    /// Chip IPC at the most power-hungry SMT mode.
    pub ipc: f64,
    /// The SMT mode at which the maximum power was observed.
    pub best_mode: SmtMode,
}

/// Builds candidate benchmarks from sequences and measures them on a platform.
pub struct StressmarkSearch<'a, P: Platform> {
    platform: &'a P,
    loop_instructions: usize,
    cores: u32,
    smt_modes: Vec<SmtMode>,
}

impl<'a, P: Platform> StressmarkSearch<'a, P> {
    /// Creates a search harness that evaluates candidates on all enabled cores of the
    /// platform in the given SMT modes (the paper executes each set in the three
    /// available SMT modes and reports the maximum).
    pub fn new(platform: &'a P) -> Self {
        let cores = platform.uarch().max_cores;
        Self {
            platform,
            loop_instructions: 384,
            cores,
            smt_modes: vec![SmtMode::Smt1, SmtMode::Smt2, SmtMode::Smt4],
        }
    }

    /// Sets the number of enabled cores the candidates are evaluated on.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or exceeds the platform's core count.
    pub fn with_cores(mut self, cores: u32) -> Self {
        assert!(cores >= 1 && cores <= self.platform.uarch().max_cores);
        self.cores = cores;
        self
    }

    /// Sets the loop body length of the generated candidates (the paper uses 4096; the
    /// default here is smaller to keep simulated searches fast — the steady-state power
    /// of a replicated 6-instruction pattern does not depend on the loop length).
    pub fn with_loop_instructions(mut self, loop_instructions: usize) -> Self {
        assert!(loop_instructions >= super::sets::SEQUENCE_LENGTH);
        self.loop_instructions = loop_instructions;
        self
    }

    /// Restricts the evaluated SMT modes.
    ///
    /// # Panics
    ///
    /// Panics if `modes` is empty.
    pub fn with_smt_modes(mut self, modes: Vec<SmtMode>) -> Self {
        assert!(!modes.is_empty(), "at least one SMT mode is required");
        self.smt_modes = modes;
        self
    }

    /// Builds the micro-benchmark realising one candidate sequence.
    ///
    /// # Errors
    ///
    /// Returns the first pass failure.
    pub fn build(&self, sequence: &[OpcodeId]) -> Result<MicroBenchmark, PassError> {
        let arch = self.platform.uarch();
        let mut synth = Synthesizer::new(arch.clone())
            .with_seed(0x57e5)
            .with_name_prefix("stressmark");
        synth.add_pass(SkeletonPass::endless_loop(self.loop_instructions));
        synth.add_pass(SequencePass::repeat(sequence.to_vec()));
        // Max-power rationale: maximise IPC and unit usage, avoid stalls — L1-resident
        // memory accesses and no artificial dependencies.
        synth.add_pass(MemoryPass::new(HitDistribution::l1_only()));
        synth.add_pass(InitRegistersPass::random());
        synth.add_pass(DependencyDistancePass::none());
        synth.synthesize()
    }

    /// Measures one candidate and returns its result.
    ///
    /// # Errors
    ///
    /// Returns the first pass failure.
    pub fn evaluate(&self, sequence: &[OpcodeId]) -> Result<StressmarkResult, PassError> {
        let arch = self.platform.uarch();
        let bench = self.build(sequence)?;
        let mut best: Option<(f64, f64, SmtMode)> = None;
        for &mode in &self.smt_modes {
            let m = self.platform.run(&bench, CmpSmtConfig::new(self.cores, mode));
            let power = m.average_power();
            if best.map(|(p, _, _)| power > p).unwrap_or(true) {
                best = Some((power, m.chip_ipc(), mode));
            }
        }
        let (power, ipc, best_mode) = best.expect("at least one SMT mode is evaluated");
        Ok(StressmarkResult {
            sequence: sequence.iter().map(|op| arch.isa.def(*op).mnemonic().to_owned()).collect(),
            power,
            ipc,
            best_mode,
        })
    }

    /// Measures every candidate of a set and returns the results in input order.
    ///
    /// # Errors
    ///
    /// Returns the first pass failure.
    pub fn evaluate_set(
        &self,
        sequences: &[SequenceCandidate],
    ) -> Result<Vec<StressmarkResult>, PassError> {
        sequences.iter().map(|s| self.evaluate(s)).collect()
    }

    /// Runs an exhaustive DSE over a candidate set (optionally truncated to a budget)
    /// and returns the best sequence found together with the search trace.
    ///
    /// # Panics
    ///
    /// Panics if `sequences` is empty.
    pub fn exhaustive(
        &self,
        sequences: Vec<SequenceCandidate>,
        budget: Option<usize>,
    ) -> SearchResult<SequenceCandidate> {
        let search = match budget {
            Some(b) => ExhaustiveSearch::with_budget(b),
            None => ExhaustiveSearch::new(),
        };
        let mut evaluator = |candidate: &SequenceCandidate| {
            self.evaluate(candidate).map(|r| r.power).unwrap_or(0.0)
        };
        search.run(sequences, &mut evaluator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets;
    use microprobe::platform::SimPlatform;

    fn search(platform: &SimPlatform) -> StressmarkSearch<'_, SimPlatform> {
        StressmarkSearch::new(platform)
            .with_loop_instructions(48)
            .with_smt_modes(vec![SmtMode::Smt1])
    }

    #[test]
    fn candidate_benchmarks_replicate_the_sequence() {
        let platform = SimPlatform::power7_fast();
        let s = search(&platform);
        let arch = platform.uarch();
        let seq = sets::expert_manual_set(arch)[0].clone();
        let bench = s.build(&seq).unwrap();
        assert_eq!(bench.kernel().len(), 48);
        for (i, inst) in bench.kernel().body().iter().enumerate() {
            assert_eq!(inst.opcode(), seq[i % seq.len()]);
        }
    }

    #[test]
    fn evaluation_reports_power_and_mode() {
        let platform = SimPlatform::power7_fast();
        let s = search(&platform);
        let arch = platform.uarch();
        let seq = sets::expert_manual_set(arch)[0].clone();
        let result = s.evaluate(&seq).unwrap();
        assert!(result.power > platform.idle_power());
        assert!(result.ipc > 0.0);
        assert_eq!(result.sequence.len(), sets::SEQUENCE_LENGTH);
        assert_eq!(result.best_mode, SmtMode::Smt1);
    }

    #[test]
    fn exhaustive_search_finds_at_least_as_good_a_candidate_as_the_first() {
        let platform = SimPlatform::power7_fast();
        let s = search(&platform);
        let arch = platform.uarch();
        let candidates: Vec<_> = sets::expert_manual_set(arch);
        let first_power = s.evaluate(&candidates[0]).unwrap().power;
        let result = s.exhaustive(candidates, Some(5));
        assert!(result.best_score >= first_power - 1e-9);
        assert_eq!(result.evaluations, 5);
    }
}
