//! Property test: determinism under parallelism.
//!
//! For random measurement plans and every worker count in `1..=8`, the work-stealing
//! executor ([`mp_runtime::par_map_with_workers`]) and the memoizing
//! [`ExperimentSession`] produce results identical to the serial run — the steal
//! interleaving may reorder *execution*, but never the *results*.

use std::sync::OnceLock;

use microprobe::ir::MicroBenchmark;
use microprobe::platform::{Platform, SimPlatform};
use microprobe::prelude::*;
use mp_power::{SampleKind, WorkloadSample};
use mp_runtime::{par_map_with_workers, ExperimentPlan, ExperimentSession};
use mp_sim::{ChipSim, SimOptions};
use mp_uarch::{CmpSmtConfig, SmtMode};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A platform with very short runs: the property only cares about bit-identity, not
/// steady-state measurements.
fn fast_platform() -> SimPlatform {
    SimPlatform::new(ChipSim::new(mp_uarch::power7()).with_options(SimOptions {
        warmup_cycles: 300,
        measure_cycles: 600,
        sample_cycles: 150,
        noise_fraction: 0.002,
        prefetch_enabled: true,
        seed: 0xd37e,
        uncore_mode: mp_sim::UncoreMode::Private,
    }))
}

/// A small pool of distinct benchmarks the random plans draw from.
fn benchmark_pool() -> &'static Vec<MicroBenchmark> {
    static POOL: OnceLock<Vec<MicroBenchmark>> = OnceLock::new();
    POOL.get_or_init(|| {
        let arch = mp_uarch::power7();
        let computes = arch.isa.compute_instructions();
        (0..4u64)
            .map(|i| {
                let mut synth = Synthesizer::new(arch.clone())
                    .with_name_prefix(format!("det{i}"))
                    .with_seed(0xde7e << 4 | i);
                synth.add_pass(SkeletonPass::endless_loop(24));
                synth.add_pass(InstructionMixPass::uniform(computes.clone()));
                synth.synthesize().expect("pool benchmark synthesizes")
            })
            .collect()
    })
}

fn config_pool() -> [CmpSmtConfig; 4] {
    [
        CmpSmtConfig::new(1, SmtMode::Smt1),
        CmpSmtConfig::new(1, SmtMode::Smt4),
        CmpSmtConfig::new(2, SmtMode::Smt1),
        CmpSmtConfig::new(2, SmtMode::Smt2),
    ]
}

fn random_plan(seed: u64, jobs: usize) -> ExperimentPlan {
    let pool = benchmark_pool();
    let configs = config_pool();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut plan = ExperimentPlan::new();
    for i in 0..jobs {
        let bench = &pool[rng.gen_range(0..pool.len())];
        let config = configs[rng.gen_range(0..configs.len())];
        // Repeats are likely (small pools) and intended: they exercise the dedup path.
        plan.push(format!("job{i}"), bench.clone(), config, SampleKind::Random);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]
    #[test]
    fn parallel_results_are_identical_to_serial(seed in 0u64..u64::MAX, jobs in 1usize..=6) {
        let platform = fast_platform();
        let plan = random_plan(seed, jobs);

        // Serial references: a plain loop for the session results, a serial map for
        // par_map.
        let reference: Vec<(WorkloadSample, SampleKind)> = plan
            .jobs()
            .iter()
            .map(|job| {
                let m = platform.run(&job.benchmark, job.config);
                (WorkloadSample::from_measurement(&job.name, &m), job.kind)
            })
            .collect();
        let pairs: Vec<(MicroBenchmark, CmpSmtConfig)> =
            plan.jobs().iter().map(|j| (j.benchmark.clone(), j.config)).collect();
        let serial_map: Vec<_> = pairs.iter().map(|(b, c)| platform.run(b, *c)).collect();

        for workers in 1usize..=8 {
            let session = ExperimentSession::new(fast_platform()).with_workers(workers);
            let samples = session.run(&plan);
            prop_assert!(samples == reference, "session diverged at workers={workers}");
            // Resubmission is answered from the memo cache — still identical.
            prop_assert!(session.run(&plan) == reference, "replay diverged at workers={workers}");

            let mapped = par_map_with_workers(workers, &pairs, |(b, c)| platform.run(b, *c));
            prop_assert!(mapped == serial_map, "par_map diverged at workers={workers}");
        }
    }
}
