//! Criterion benches of the generation framework: synthesizer throughput, analytical
//! cache planning and the ablation between the analytical memory model and a DSE-style
//! stride search (the design choice called out in DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use microprobe::prelude::*;
use mp_cache::AccessPlanner;
use mp_uarch::MemoryHierarchy;

fn bench_synthesizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesizer");
    for &size in &[256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::new("figure2_policy", size), &size, |b, &size| {
            b.iter(|| {
                let arch = mp_uarch::power7();
                let loads_vsu = arch.isa.select(|d| d.is_load() && d.stresses(mp_isa::Unit::Vsu));
                let mut synth = Synthesizer::new(arch);
                synth.add_pass(SkeletonPass::endless_loop(size));
                synth.add_pass(InstructionMixPass::uniform(loads_vsu));
                synth.add_pass(MemoryPass::new(HitDistribution::caches_balanced()));
                synth.add_pass(InitRegistersPass::constant());
                synth.add_pass(DependencyDistancePass::random(1, 8));
                synth.synthesize().expect("benchmark generates")
            })
        });
    }
    group.finish();
}

fn bench_cache_planner(c: &mut Criterion) {
    let hierarchy = MemoryHierarchy::power7();
    let planner = AccessPlanner::new(&hierarchy);
    let dist = HitDistribution::caches_balanced();
    let mut group = c.benchmark_group("analytical_cache_model");
    for &accesses in &[128usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::new("plan", accesses), &accesses, |b, &n| {
            b.iter(|| planner.plan(&dist, n, 0, 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_synthesizer, bench_cache_planner);
criterion_main!(benches);
