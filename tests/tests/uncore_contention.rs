//! Shared-uncore contention: the chip-level L3 + memory-port subsystem must make
//! uncore power *workload-dependent* — and therefore learnable by the counter models.
//!
//! Covers the behavioural contract of the subsystem:
//! * co-scheduled memory-bound threads slow each other down (shared-L3 thrashing plus
//!   memory-port back-pressure) and draw superlinearly more uncore power than the sum
//!   of their solo runs;
//! * single-core runs whose footprints fit either L3 behave the same with a private
//!   and a shared uncore;
//! * a power model trained on shared-mode measurements attributes a non-zero
//!   coefficient to the uncore counters instead of folding the uncore into the
//!   intercept.

use mp_power::{ActivityVector, LinearRegression, PowerModel, TopDownModel, WorkloadSample};
use mp_sim::fixtures::{
    compute_bound, memory_bound, uncore_contender, uncore_contention_pair, uncore_mem_chain,
    uncore_prefetch_stream, CONTENDER_GROUPS,
};
use mp_sim::{ChipSim, Kernel, Measurement, SimOptions, UncoreMode};
use mp_uarch::{power7, CmpSmtConfig, SmtMode};

fn sim(mode: UncoreMode) -> ChipSim {
    ChipSim::new(power7()).with_options(SimOptions {
        warmup_cycles: 1_500,
        measure_cycles: 4_000,
        sample_cycles: 500,
        // Noise off: the assertions compare exact counters and tight power ratios.
        noise_fraction: 0.0,
        prefetch_enabled: true,
        seed: 0x010c_04e5,
        uncore_mode: mode,
    })
}

fn run_pair(sim: &ChipSim, a: &Kernel, b: &Kernel) -> Measurement {
    sim.run_heterogeneous(&[a.clone(), b.clone()], CmpSmtConfig::new(2, SmtMode::Smt1))
}

#[test]
fn contention_pair_draws_superlinear_uncore_power() {
    let sim = sim(UncoreMode::Shared);
    let (a, b) = uncore_contention_pair(&sim.uarch().isa);
    let solo = |k: &Kernel| sim.run(k, CmpSmtConfig::new(1, SmtMode::Smt1));
    let solo_a = solo(&a);
    let solo_b = solo(&b);
    let pair = run_pair(&sim, &a, &b);

    // Alone, each contender's footprint fits the shared L3: every demand access hits
    // it and nothing reaches memory.
    for m in [&solo_a, &solo_b] {
        let c = m.chip_counters();
        assert!(c.l3_hits > 0);
        assert_eq!(c.mem_accesses, 0, "solo contenders must fit the shared L3");
        assert_eq!(c.bw_stalls, 0);
    }

    // Together they exceed the per-set associativity: lines spill to memory, queue on
    // the port and stall the issuing threads.
    let c = pair.chip_counters();
    assert!(c.mem_accesses > 0, "the pair must thrash the shared L3");
    assert!(c.bw_stalls > 0, "memory transfers must queue on the port");

    // Superlinear uncore power: the pair draws measurably more than the two solo runs
    // combined (2.0x with the shipped parameters; 1.3x leaves headroom for tuning).
    let combined_solo = solo_a.ground_truth().uncore + solo_b.ground_truth().uncore;
    let pair_uncore = pair.ground_truth().uncore;
    assert!(
        pair_uncore > 1.3 * combined_solo,
        "pair uncore power {pair_uncore} vs combined solo {combined_solo}"
    );
}

#[test]
fn contention_pair_loses_per_thread_ipc() {
    let sim = sim(UncoreMode::Shared);
    let (a, b) = uncore_contention_pair(&sim.uarch().isa);
    let solo_ipc = sim.run(&a, CmpSmtConfig::new(1, SmtMode::Smt1)).chip_ipc();
    let pair = run_pair(&sim, &a, &b);
    let per_core: Vec<f64> = pair.per_core().iter().map(|c| c.ipc()).collect();

    // No thread may speed up under contention, and the port back-pressure must starve
    // at least one of them outright (the shared LRU lets one winner keep its lines).
    for ipc in &per_core {
        assert!(*ipc <= solo_ipc + 1e-9, "per-thread IPC {ipc} above solo {solo_ipc}");
    }
    let slowest = per_core.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        slowest < 0.6 * solo_ipc,
        "contention must starve a thread: slowest {slowest} vs solo {solo_ipc}"
    );
    assert!(pair.chip_ipc() < 2.0 * solo_ipc - 1e-9);
}

#[test]
fn single_core_shared_mode_matches_private_mode() {
    let shared = sim(UncoreMode::Shared);
    let private = sim(UncoreMode::Private);
    let isa = &shared.uarch().isa;
    let config = CmpSmtConfig::new(1, SmtMode::Smt1);

    // A kernel with no memory traffic is bit-identical up to the uncore power model:
    // counters match exactly, and the measured power differs by exactly the private
    // mode's constant uncore adder (noise is disabled).
    let compute = compute_bound(isa);
    let ms = shared.run(&compute, config);
    let mp = private.run(&compute, config);
    assert_eq!(ms.per_thread(), mp.per_thread());
    let uncore_const = mp.ground_truth().uncore;
    assert!(uncore_const > 0.0);
    assert!((mp.average_power() - ms.average_power() - uncore_const).abs() < 1e-9);

    // A memory-touching kernel whose footprint fits both L3 geometries sees the same
    // steady-state hit distribution.  Timing may drift by a handful of instructions —
    // cold misses queue on the memory port during warm-up — but not materially.
    let memory = memory_bound(isa);
    let ms = shared.run(&memory, config);
    let mp = private.run(&memory, config);
    let (cs, cp) = (ms.chip_counters(), mp.chip_counters());
    let close = |a: u64, b: u64, what: &str| {
        assert!(a.abs_diff(b) <= 8, "{what} diverged between modes: shared {a} vs private {b}");
    };
    close(cs.instr_completed, cp.instr_completed, "instructions");
    close(cs.l1_hits, cp.l1_hits, "L1 hits");
    close(cs.l2_hits, cp.l2_hits, "L2 hits");
    close(cs.l3_hits, cp.l3_hits, "L3 hits");
    close(cs.mem_accesses, cp.mem_accesses, "memory accesses");
    assert_eq!(cs.bw_stalls, 0, "a solo in-cache workload must never stall on bandwidth");
    let rel_ipc = (ms.chip_ipc() - mp.chip_ipc()).abs() / mp.chip_ipc();
    assert!(rel_ipc < 0.01, "solo IPC must match between modes: {rel_ipc}");
}

#[test]
fn prefetch_fills_occupy_the_memory_port() {
    let sim = sim(UncoreMode::Shared);
    let isa = &sim.uarch().isa;
    let chain = uncore_mem_chain(isa);
    let firehose = uncore_prefetch_stream(isa);
    let solo_config = CmpSmtConfig::new(1, SmtMode::Smt1);

    // Alone, the latency-bound chain transfers lines without ever saturating the port,
    // and the prefetch stream reaches memory through its admitted fills.
    let solo_chain = sim.run(&chain, solo_config);
    assert_eq!(solo_chain.chip_counters().bw_stalls, 0, "the chain alone never queues");
    assert!(solo_chain.chip_counters().mem_accesses > 0);
    let solo_stream = sim.run(&firehose, solo_config);
    assert!(solo_stream.chip_counters().prefetches > 0);
    assert!(
        solo_stream.ground_truth().uncore > 0.0,
        "admitted prefetch fills must accrue uncore transfer energy"
    );

    // Co-scheduled with the firehose, the chain's demand misses queue behind prefetch
    // line transfers: bandwidth stalls appear and the chain loses IPC.  This is
    // exactly what free prefetch fills cannot produce.
    let pair = sim
        .run_heterogeneous(&[chain.clone(), firehose.clone()], CmpSmtConfig::new(2, SmtMode::Smt1));
    let c = pair.chip_counters();
    assert!(c.bw_stalls > 0, "demand misses must queue behind prefetch transfers");
    let chain_ipc = pair.per_core()[0].ipc();
    assert!(
        chain_ipc < solo_chain.chip_ipc() - 1e-9,
        "prefetch port pressure must slow the chain: paired {chain_ipc} vs solo {}",
        solo_chain.chip_ipc()
    );

    // The solo firehose already saturates the port, so the pair's transfer energy is
    // bandwidth-capped — but the chain's demand probes and the queueing it now suffers
    // burn L3-access and stall energy on top of the saturated transfer stream.
    assert!(pair.ground_truth().uncore > solo_stream.ground_truth().uncore);
}

/// Pairs of `dcbt` + load of the same line with `spacing` integer instructions in
/// between, over a footprint that misses the whole hierarchy on every touch (8 sets ×
/// 12 tags cycling through 8-way caches, non-adjacent lines so the hardware
/// prefetcher stays out of the picture).
fn prefetch_then_load(isa: &mp_isa::Isa, spacing: usize) -> Kernel {
    use mp_sim::fixtures::materialise;
    let mut body = Vec::new();
    for i in 0..96usize {
        let address = (i as u64 / 8) * (4 << 20) + (i as u64 % 8) * 3 * 128;
        body.push(materialise(isa, "dcbt", i, Some(address)));
        for j in 0..spacing {
            body.push(materialise(isa, "add", i + j, None));
        }
        body.push(materialise(isa, "ld", i, Some(address)));
    }
    Kernel::new(format!("prefetch_then_load_{spacing}"), body)
}

#[test]
fn full_port_queue_drops_prefetches() {
    let sim = sim(UncoreMode::Shared);
    let isa = sim.uarch().isa.clone();
    let config = CmpSmtConfig::new(1, SmtMode::Smt1);

    // With compute between each prefetch and its load, line transfers arrive slower
    // than the port drains them: every prefetch is admitted and every load hits the
    // L1 its `dcbt` just filled.
    let relaxed = sim.run(&prefetch_then_load(&isa, 16), config);
    let c = relaxed.chip_counters();
    assert!(c.l1_hits > 0, "admitted prefetches make their loads hit the L1");
    assert_eq!(c.mem_accesses, 0, "an unsaturated port admits every prefetch");

    // Back-to-back, the prefetches saturate the queue: the excess ones are *dropped*
    // (they fill nothing), so their loads miss all the way to memory and queue on the
    // port themselves.  Free prefetch fills could never produce this signature.
    let saturated = sim.run(&prefetch_then_load(&isa, 0), config);
    let c = saturated.chip_counters();
    assert!(c.mem_accesses > 0, "dropped prefetches leave their loads to miss to memory");
    assert!(c.bw_stalls > 0, "demand loads queue behind the prefetch transfers");
}

/// Builds the shared-mode training population for the model-fit assertions: solo and
/// co-scheduled contenders (varying uncore traffic and stalls independently) plus the
/// compute/memory/branchy reference kernels across configurations.
fn shared_training_samples() -> Vec<WorkloadSample> {
    let sim = sim(UncoreMode::Shared);
    let isa = &sim.uarch().isa;
    let mut samples = Vec::new();
    let mut push = |name: &str, m: &Measurement| {
        samples.push(WorkloadSample::from_measurement(name, m));
    };

    for group in 0..CONTENDER_GROUPS {
        let kernel = uncore_contender(isa, group);
        let m = sim.run(&kernel, CmpSmtConfig::new(1, SmtMode::Smt1));
        push(&format!("solo{group}"), &m);
    }
    for (a, b) in [(0, 1), (2, 3), (0, 2), (1, 3)] {
        let m = run_pair(&sim, &uncore_contender(isa, a), &uncore_contender(isa, b));
        push(&format!("pair{a}{b}"), &m);
    }
    let quad: Vec<Kernel> = (0..CONTENDER_GROUPS).map(|g| uncore_contender(isa, g)).collect();
    let m = sim.run_heterogeneous(&quad, CmpSmtConfig::new(4, SmtMode::Smt1));
    push("quad", &m);

    // Unsaturated memory streams: line transfers without bandwidth stalls, so the
    // transfer and stall counters move independently across the population.
    let chain = uncore_mem_chain(isa);
    for cores in [1, 2, 4] {
        let m = sim.run(&chain, CmpSmtConfig::new(cores, SmtMode::Smt1));
        push(&format!("memchain/{cores}-1"), &m);
    }

    for kernel in mp_sim::fixtures::reference_kernels(isa) {
        for config in [
            CmpSmtConfig::new(1, SmtMode::Smt1),
            CmpSmtConfig::new(1, SmtMode::Smt4),
            CmpSmtConfig::new(2, SmtMode::Smt2),
            CmpSmtConfig::new(4, SmtMode::Smt1),
        ] {
            let m = sim.run(&kernel, config);
            push(&format!("{}/{}", kernel.name(), config.label()), &m);
        }
    }
    samples
}

#[test]
fn fitted_model_attributes_power_to_the_uncore_counters() {
    let samples = shared_training_samples();

    // Fit with the physical non-negativity constraint the bottom-up methodology uses:
    // power-component weights cannot be negative, so exactly-collinear columns (demand
    // memory accesses duplicate L3 misses when no prefetch transfer splits them) are
    // resolved instead of smeared into opposite-signed pairs.
    let xs: Vec<Vec<f64>> = samples.iter().map(|s| s.topdown_features()).collect();
    let ys: Vec<f64> = samples.iter().map(|s| s.power).collect();
    let fit = LinearRegression::fit_non_negative(&xs, &ys).expect("fit succeeds");

    // The bandwidth-stall counter only moves under contention; a model that folds the
    // uncore into the intercept cannot explain the contended runs, so the fitted
    // weight must be materially non-zero (the ground truth charges 0.4 per stall).
    let bw_stall_idx = ActivityVector::NAMES.iter().position(|n| *n == "BWSTALL").unwrap();
    let bw_stall_weight = fit.coefficients()[bw_stall_idx];
    assert!(
        bw_stall_weight > 0.05,
        "the uncore must not be intercept-only: BWSTALL weight {bw_stall_weight}"
    );
    // The memory-transfer energy lands on the (collinear) MEM/L3MISS pair.
    let mem_idx = ActivityVector::NAMES.iter().position(|n| *n == "MEM").unwrap();
    let l3_miss_idx = ActivityVector::NAMES.iter().position(|n| *n == "L3MISS").unwrap();
    let transfer_weight = fit.coefficients()[mem_idx] + fit.coefficients()[l3_miss_idx];
    assert!(transfer_weight > 1.0, "memory transfers must carry weight: {transfer_weight}");

    // A plain top-down model over the same features must explain the contended runs.
    let model = TopDownModel::train("TD_Shared", samples.iter()).expect("training succeeds");
    for sample in &samples {
        let rel = (model.predict(sample) - sample.power).abs() / sample.power;
        assert!(rel < 0.15, "{}: relative error {rel}", sample.name);
    }
}
