//! `mp-runtime` — the measurement runtime of the MicroProbe reproduction.
//!
//! The paper's methodology is embarrassingly parallel: hundreds of independent
//! `(micro-benchmark × CMP-SMT configuration)` runs feed the bottom-up/top-down power
//! models.  This crate supplies the two layers every measurement path in the workspace
//! runs through:
//!
//! 1. [`executor`] — a std-only, cost-aware work-stealing thread pool (one persistent
//!    per-process pool of lazily-spawned workers, per-worker deques plus stealing)
//!    exposing [`scope`]/[`par_map`] with deterministic result ordering, worker-count
//!    control via the `MP_THREADS` environment variable, panic propagation, and a
//!    [`CostHint`]-driven inline-serial fallback plus adaptive chunking so parallel
//!    dispatch never loses to the serial loop;
//! 2. [`session`] — a memoizing [`ExperimentSession`] that takes a declarative
//!    [`ExperimentPlan`] of measurement jobs, content-hashes each job, dedupes repeats
//!    and memoizes [`Measurement`](mp_sim::Measurement)s across plan submissions, so
//!    regenerating every figure (or running every test fixture) measures each unique
//!    pair exactly once per process;
//! 3. [`dse`] — a [`ParallelEvaluator`] bridging the core DSE search drivers onto the
//!    executor, so exhaustive and genetic searches score whole candidate batches in
//!    parallel with results identical to the serial path;
//! 4. [`store`] — a crash-safe, content-addressed persistent measurement store
//!    (opt-in via `MP_STORE_DIR`) that turns the session's memo cache into a second,
//!    disk-backed tier surviving restarts, with torn/corrupt/stale records quarantined
//!    and recomputed instead of crashing;
//! 5. [`faults`] — deterministic, seeded fault injection (`MP_FAULTS`) that drives IO
//!    errors and torn writes into the store, panics into simulation jobs and delays
//!    into executor tasks, so every failure path above is provable in CI.
//!
//! `mp_bench::measure_benchmarks`, the experiment binaries, and the slow integration
//! tests are all thin wrappers over these layers.

pub mod dse;
pub mod executor;
pub mod faults;
pub mod poison;
pub mod session;
pub mod shard;
pub mod store;

pub use dse::ParallelEvaluator;
pub use executor::{
    default_workers, par_map, par_map_with_cost, par_map_with_workers,
    par_map_with_workers_and_cost, scope, scope_with_workers, worker_index, CostHint, Scope,
    CHUNK_TARGET_ENV, PAR_THRESHOLD_ENV, THREADS_ENV,
};
pub use faults::{FaultPlan, FAULTS_ENV};
pub use session::{
    BatchRunner, ExperimentPlan, ExperimentSession, JobError, PlannedJob, SessionOptions,
    SessionStats,
};
pub use shard::ShardedCache;
pub use store::{Store, StoreStats, STORE_DIR_ENV};
