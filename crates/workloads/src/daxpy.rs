//! DAXPY kernels: the conventional hand-written stressmark baseline of Figure 9.

use microprobe::prelude::*;
use mp_isa::OpcodeId;
use mp_uarch::MicroArchitecture;

/// Generates DAXPY-style kernels (`y[i] += a * x[i]`) with different L1-contained memory
/// footprints, the computational kernel the paper runs as a conventional stressmark
/// reference.
///
/// Each kernel iterates over a vector load of `x`, a vector load of `y`, a fused
/// multiply-add and a vector store of `y`; the `footprint` of each variant controls how
/// much of the L1 the working set occupies (all variants stay L1-resident, as in the
/// paper).
///
/// # Errors
///
/// Returns the first pass failure.
pub fn daxpy_kernels(
    arch: &MicroArchitecture,
    loop_instructions: usize,
) -> Result<Vec<MicroBenchmark>, PassError> {
    let isa = &arch.isa;
    let sequence: Vec<OpcodeId> = ["lxvd2x", "lxvd2x", "xvmaddadp", "stxvd2x"]
        .iter()
        .map(|m| isa.opcode(m).expect("DAXPY instructions are defined"))
        .collect();

    // Three footprints: a handful of lines, a quarter of the L1 and half of the L1.
    let footprints = [4usize, 8, 16];
    let mut kernels = Vec::with_capacity(footprints.len());
    for (idx, _lines) in footprints.iter().enumerate() {
        let mut synth = Synthesizer::new(arch.clone())
            .with_seed(0xdaff_0d1e ^ idx as u64)
            .with_name_prefix(format!("daxpy-fp{idx}"));
        synth.add_pass(SkeletonPass::endless_loop(loop_instructions));
        synth.add_pass(SequencePass::repeat(sequence.clone()));
        synth.add_pass(MemoryPass::new(HitDistribution::l1_only()));
        synth.add_pass(InitRegistersPass::random());
        // The FMA depends on the loads of the same DAXPY element: a short dependency
        // distance models the real kernel's recurrence-free but load-to-use-bound shape.
        synth.add_pass(DependencyDistancePass::random(1, 3));
        kernels.push(synth.synthesize()?);
    }
    Ok(kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_uarch::power7;

    #[test]
    fn daxpy_kernels_generate_and_stay_l1_resident() {
        let arch = power7();
        let kernels = daxpy_kernels(&arch, 64).expect("kernels generate");
        assert_eq!(kernels.len(), 3);
        let isa = &arch.isa;
        for k in &kernels {
            for inst in k.kernel().body() {
                let def = inst.def(isa);
                assert!(def.is_memory() || def.is_vector(), "{} unexpected", def.mnemonic());
            }
        }
    }

    #[test]
    fn daxpy_uses_the_expected_instruction_mix() {
        let arch = power7();
        let kernels = daxpy_kernels(&arch, 64).unwrap();
        let isa = &arch.isa;
        let body = kernels[0].kernel().body();
        let loads = body.iter().filter(|i| i.def(isa).is_load()).count();
        let stores = body.iter().filter(|i| i.def(isa).is_store()).count();
        let fmas = body.iter().filter(|i| i.def(isa).mnemonic() == "xvmaddadp").count();
        assert_eq!(loads, body.len() / 2);
        assert_eq!(stores, body.len() / 4);
        assert_eq!(fmas, body.len() / 4);
    }
}
