//! Functional set-associative cache hierarchy simulation.

use mp_uarch::{CacheGeometry, MemLevel, MemoryHierarchy};

use crate::energy::EnergyParams;
use crate::uncore::UncoreSim;

/// Outcome of a demand access: which level served it and its load-to-use latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The level that served the access.
    pub level: MemLevel,
    /// Load-to-use latency in cycles.
    pub latency: u32,
    /// Whether the hardware prefetcher issued a prefetch alongside this access.
    pub prefetched: bool,
    /// Cycles the access waited for the shared memory port (0 with a private uncore).
    pub bw_stall: u32,
}

/// One set-associative cache level with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    /// `sets[set]` holds `(tag, last_use_stamp)` pairs, at most `ways` of them.
    sets: Vec<Vec<(u64, u64)>>,
    stamp: u64,
    // Set/tag extraction pre-resolved from the geometry: `set_of`/`tag_of` divide by
    // `num_sets()` on every call, which is measurable at one demand access per issue.
    offset_bits: u32,
    set_mask: u64,
    tag_shift: u32,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = vec![Vec::with_capacity(geometry.ways as usize); geometry.num_sets() as usize];
        Self {
            sets,
            stamp: 0,
            offset_bits: geometry.offset_bits(),
            set_mask: geometry.num_sets() - 1,
            tag_shift: geometry.offset_bits() + geometry.index_bits(),
            geometry,
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    fn set_and_tag(&self, address: u64) -> (usize, u64) {
        (((address >> self.offset_bits) & self.set_mask) as usize, address >> self.tag_shift)
    }

    /// Looks up an address; on hit the LRU stamp is refreshed.  Returns `true` on hit.
    pub fn access(&mut self, address: u64) -> bool {
        self.stamp += 1;
        let (set, tag) = self.set_and_tag(address);
        if let Some(entry) = self.sets[set].iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = self.stamp;
            return true;
        }
        false
    }

    /// Inserts the line containing `address`, evicting the LRU line of the set if needed.
    pub fn fill(&mut self, address: u64) {
        self.stamp += 1;
        let (set, tag) = self.set_and_tag(address);
        let lines = &mut self.sets[set];
        if let Some(entry) = lines.iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = self.stamp;
            return;
        }
        if lines.len() >= self.geometry.ways as usize {
            let lru = lines
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(i, _)| i)
                .expect("set is non-empty when full");
            lines.swap_remove(lru);
        }
        lines.push((tag, self.stamp));
    }

    /// Returns `true` if the line containing `address` is currently resident.
    pub fn contains(&self, address: u64) -> bool {
        let (set, tag) = self.set_and_tag(address);
        self.sets[set].iter().any(|(t, _)| *t == tag)
    }

    /// Number of resident lines (for tests and occupancy statistics).
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Empties the cache.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.stamp = 0;
    }
}

/// The private cache hierarchy of one core (L1 + L2 + local L3 slice) plus a simple
/// next-line hardware prefetcher.
///
/// The hierarchy fills every level on a miss (mostly-inclusive), which is the behaviour
/// the analytical cache model of `mp-cache` assumes.
#[derive(Debug, Clone)]
pub struct CoreCaches {
    l1: SetAssocCache,
    l2: SetAssocCache,
    /// The private L3 slice; `None` when the core's L3 lives behind the shared uncore.
    l3: Option<SetAssocCache>,
    mem_latency: u32,
    prefetch_enabled: bool,
    last_line: Option<u64>,
    /// `log2(line_bytes)`; the line size is asserted to be a power of two.
    line_shift: u32,
    prefetches_issued: u64,
}

impl CoreCaches {
    /// Creates the cache hierarchy of one core, with a private L3 slice.
    pub fn new(hierarchy: &MemoryHierarchy, prefetch_enabled: bool) -> Self {
        Self::build(hierarchy, prefetch_enabled, true)
    }

    /// Creates the hierarchy for a core whose L3 lives behind the chip's shared
    /// uncore: only L1 and L2 are allocated (the private slice would never be
    /// touched).  Such a hierarchy must be driven through the `*_shared` accessors.
    pub fn new_shared(hierarchy: &MemoryHierarchy, prefetch_enabled: bool) -> Self {
        Self::build(hierarchy, prefetch_enabled, false)
    }

    fn build(hierarchy: &MemoryHierarchy, prefetch_enabled: bool, private_l3: bool) -> Self {
        Self {
            l1: SetAssocCache::new(hierarchy.l1),
            l2: SetAssocCache::new(hierarchy.l2),
            l3: private_l3.then(|| SetAssocCache::new(hierarchy.l3)),
            mem_latency: hierarchy.mem_latency_cycles,
            prefetch_enabled,
            last_line: None,
            line_shift: hierarchy.line_bytes().trailing_zeros(),
            prefetches_issued: 0,
        }
    }

    fn private_l3(&mut self) -> &mut SetAssocCache {
        self.l3.as_mut().expect("private-mode access on a shared-uncore hierarchy")
    }

    /// The next-line stride prefetcher, shared by the private and shared access
    /// paths: on two consecutive accesses to adjacent lines, pull the following line
    /// into the whole hierarchy.  Randomised access plans defeat it.  With the L3
    /// behind the shared uncore, the fill charges the memory port
    /// ([`UncoreSim::prefetch_fill`]) and may be dropped under bandwidth pressure.
    /// Returns whether a prefetch was issued plus its ground-truth uncore energy.
    fn next_line_prefetch(
        &mut self,
        address: u64,
        uncore: Option<(&mut UncoreSim, u64, &EnergyParams)>,
    ) -> (bool, f64) {
        let mut prefetched = false;
        let mut uncore_energy = 0.0;
        let line = address >> self.line_shift;
        if self.prefetch_enabled {
            if let Some(prev) = self.last_line {
                if line == prev + 1 {
                    let next = (line + 1) << self.line_shift;
                    if !self.l1.contains(next) {
                        let admitted = match uncore {
                            Some((uncore, now, params)) => {
                                match uncore.prefetch_fill(next, now, params) {
                                    Some(energy) => {
                                        uncore_energy += energy;
                                        true
                                    }
                                    None => false,
                                }
                            }
                            None => {
                                self.private_l3().fill(next);
                                true
                            }
                        };
                        if admitted {
                            self.l1.fill(next);
                            self.l2.fill(next);
                            self.prefetches_issued += 1;
                            prefetched = true;
                        }
                    }
                }
            }
        }
        self.last_line = Some(line);
        (prefetched, uncore_energy)
    }

    /// Performs a demand access (load or store treated alike for residence purposes).
    pub fn access(&mut self, address: u64) -> AccessOutcome {
        let (level, latency) = if self.l1.access(address) {
            (MemLevel::L1, self.l1.geometry().hit_latency_cycles)
        } else if self.l2.access(address) {
            self.l1.fill(address);
            (MemLevel::L2, self.l2.geometry().hit_latency_cycles)
        } else if self.private_l3().access(address) {
            self.l2.fill(address);
            self.l1.fill(address);
            (MemLevel::L3, self.l3.as_ref().expect("private L3").geometry().hit_latency_cycles)
        } else {
            self.private_l3().fill(address);
            self.l2.fill(address);
            self.l1.fill(address);
            (MemLevel::Mem, self.mem_latency)
        };

        let (prefetched, _) = self.next_line_prefetch(address, None);
        AccessOutcome { level, latency, prefetched, bw_stall: 0 }
    }

    /// Performs a demand access with the L3 and memory behind the chip's shared uncore:
    /// L1 and L2 stay private, L2 misses contend for the shared L3 and the memory port.
    ///
    /// Returns the outcome plus the ground-truth uncore energy of the event (0 for
    /// accesses served by the private L1/L2), which the caller accrues into the uncore
    /// component of the energy breakdown.
    pub fn access_shared(
        &mut self,
        address: u64,
        now: u64,
        uncore: &mut UncoreSim,
        params: &EnergyParams,
    ) -> (AccessOutcome, f64) {
        let (level, latency, bw_stall, uncore_energy) = if self.l1.access(address) {
            (MemLevel::L1, self.l1.geometry().hit_latency_cycles, 0, 0.0)
        } else if self.l2.access(address) {
            self.l1.fill(address);
            (MemLevel::L2, self.l2.geometry().hit_latency_cycles, 0, 0.0)
        } else {
            let outcome = uncore.access(address, now, params);
            self.l2.fill(address);
            self.l1.fill(address);
            (outcome.level, outcome.latency, outcome.queue_wait, outcome.energy)
        };

        // Prefetch fills go to the shared L3 *through the memory port*: they occupy
        // bandwidth like demand transfers and are dropped when the queue is full.
        let (prefetched, prefetch_energy) =
            self.next_line_prefetch(address, Some((uncore, now, params)));
        (AccessOutcome { level, latency, prefetched, bw_stall }, uncore_energy + prefetch_energy)
    }

    /// Returns `true` if a demand access to `address` may proceed at `now`: it is
    /// resident somewhere (private L1/L2, or the shared L3), or the shared memory port
    /// can accept another transfer.  Always `true` with a private uncore.
    ///
    /// The probe is read-only — LRU state is not touched — so callers can gate issue on
    /// it and retry the same access later.
    pub fn admits(&self, address: u64, now: u64, uncore: &UncoreSim) -> bool {
        if !uncore.is_shared() {
            return true;
        }
        // Queue-has-room first: it is a single compare and true in the uncongested
        // common case, short-circuiting the three associative residency walks.
        uncore.can_accept(now)
            || self.l1.contains(address)
            || self.l2.contains(address)
            || uncore.contains(address)
    }

    /// Explicit software prefetch (e.g. `dcbt`): fills the hierarchy without a demand
    /// latency.
    pub fn prefetch(&mut self, address: u64) {
        self.private_l3().fill(address);
        self.l2.fill(address);
        self.l1.fill(address);
        self.prefetches_issued += 1;
    }

    /// Software prefetch with the L3 behind the shared uncore: the line transfer
    /// charges the memory port and is silently dropped (no fills anywhere) when the
    /// port queue is full.  Returns the ground-truth uncore energy of the event.
    pub fn prefetch_shared(
        &mut self,
        address: u64,
        now: u64,
        uncore: &mut UncoreSim,
        params: &EnergyParams,
    ) -> f64 {
        match uncore.prefetch_fill(address, now, params) {
            Some(energy) => {
                self.l2.fill(address);
                self.l1.fill(address);
                self.prefetches_issued += 1;
                energy
            }
            None => 0.0,
        }
    }

    /// Number of prefetches issued (hardware + software).
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetches_issued
    }

    /// Clears all levels and the prefetcher state.
    pub fn clear(&mut self) {
        self.l1.clear();
        self.l2.clear();
        if let Some(l3) = &mut self.l3 {
            l3.clear();
        }
        self.last_line = None;
        self.prefetches_issued = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::power7()
    }

    #[test]
    fn repeated_access_hits_l1() {
        let mut c = CoreCaches::new(&hierarchy(), false);
        assert_eq!(c.access(0x1000).level, MemLevel::Mem);
        assert_eq!(c.access(0x1000).level, MemLevel::L1);
        assert_eq!(c.access(0x1008).level, MemLevel::L1, "same line, different offset");
    }

    #[test]
    fn lru_eviction_in_one_set() {
        let h = hierarchy();
        let mut c = SetAssocCache::new(h.l1);
        // Fill one set with `ways` lines then one more: the first one must be evicted.
        let addrs: Vec<u64> = (0..=h.l1.ways as u64).map(|k| k * h.l1.num_sets() * 128).collect();
        for &a in &addrs {
            assert!(!c.access(a));
            c.fill(a);
        }
        assert!(!c.contains(addrs[0]), "LRU line must have been evicted");
        assert!(c.contains(*addrs.last().unwrap()));
    }

    #[test]
    fn cyclic_overflow_of_a_set_always_misses() {
        let h = hierarchy();
        let mut c = CoreCaches::new(&hierarchy(), false);
        // 16 lines mapping to the same L1 set, cycled twice: every access must miss L1.
        let addrs: Vec<u64> = (0..16u64).map(|k| k * h.l1.num_sets() * 128).collect();
        for &a in &addrs {
            c.access(a);
        }
        for &a in &addrs {
            assert_ne!(c.access(a).level, MemLevel::L1);
        }
    }

    #[test]
    fn l2_serves_what_l1_cannot_hold() {
        let h = hierarchy();
        let mut c = CoreCaches::new(&hierarchy(), false);
        let addrs: Vec<u64> = (0..16u64).map(|k| k * h.l1.num_sets() * 128).collect();
        // Warm-up pass, then steady state should be all-L2.
        for _ in 0..2 {
            for &a in &addrs {
                c.access(a);
            }
        }
        for &a in &addrs {
            assert_eq!(c.access(a).level, MemLevel::L2);
        }
    }

    #[test]
    fn next_line_prefetcher_catches_sequential_streams() {
        let mut c = CoreCaches::new(&hierarchy(), true);
        let line = 128u64;
        c.access(0);
        c.access(line); // adjacent: prefetch of line 2 issued
        assert!(c.prefetches_issued() >= 1);
        assert_eq!(c.access(2 * line).level, MemLevel::L1, "prefetched line must hit");
    }

    #[test]
    fn prefetcher_is_defeated_by_non_sequential_accesses() {
        let mut c = CoreCaches::new(&hierarchy(), true);
        c.access(0);
        c.access(10 * 128);
        c.access(3 * 128);
        assert_eq!(c.prefetches_issued(), 0);
    }

    #[test]
    fn clear_empties_everything() {
        let mut c = CoreCaches::new(&hierarchy(), true);
        c.access(0x4000);
        c.clear();
        assert_eq!(c.access(0x4000).level, MemLevel::Mem);
    }

    #[test]
    fn shared_path_serves_l2_misses_from_the_shared_l3() {
        use crate::uncore::{UncoreMode, UncoreSim};
        let uarch = mp_uarch::power7();
        let params = EnergyParams::power7();
        let mut a = CoreCaches::new(&uarch.hierarchy, false);
        let mut b = CoreCaches::new(&uarch.hierarchy, false);
        let mut uncore = UncoreSim::new(&uarch, UncoreMode::Shared);

        // Core A misses everywhere: the line lands in the shared L3.
        let (miss, energy) = a.access_shared(0x10_0000, 0, &mut uncore, &params);
        assert_eq!(miss.level, MemLevel::Mem);
        assert!(energy > params.uncore_mem_energy);
        // Core B (cold private caches) now hits the *shared* L3 — cross-core reuse that
        // is impossible with private hierarchies.
        let (hit, energy) = b.access_shared(0x10_0000, 10, &mut uncore, &params);
        assert_eq!(hit.level, MemLevel::L3);
        assert_eq!(hit.bw_stall, 0);
        assert!((energy - params.uncore_l3_energy).abs() < 1e-12);
    }

    #[test]
    fn admission_probe_is_read_only_and_gates_on_the_queue() {
        use crate::uncore::{UncoreMode, UncoreSim};
        let uarch = mp_uarch::power7();
        let params = EnergyParams::power7();
        let mut c = CoreCaches::new(&uarch.hierarchy, false);
        let mut uncore = UncoreSim::new(&uarch, UncoreMode::Shared);
        // Resident lines are always admitted.
        let _ = c.access_shared(0x2000, 0, &mut uncore, &params);
        assert!(c.admits(0x2000, 0, &uncore));
        // Fill the memory-port queue with misses to distinct lines.
        for i in 1..=u64::from(uarch.uncore.mem_queue_depth) {
            let _ = c.access_shared(i << 30, 0, &mut uncore, &params);
        }
        assert!(!c.admits(63 << 30, 0, &uncore), "non-resident line must wait for the port");
        assert!(c.admits(0x2000, 0, &uncore), "resident lines bypass the port");
        assert!(c.admits(63 << 30, uarch.uncore.queue_limit_cycles(), &uncore));
    }

    #[test]
    fn private_mode_admits_everything() {
        use crate::uncore::{UncoreMode, UncoreSim};
        let uarch = mp_uarch::power7();
        let c = CoreCaches::new(&uarch.hierarchy, false);
        let uncore = UncoreSim::new(&uarch, UncoreMode::Private);
        assert!(c.admits(0xdead_0000, 0, &uncore));
    }

    #[test]
    fn latencies_come_from_the_hierarchy() {
        let h = hierarchy();
        let mut c = CoreCaches::new(&h, false);
        assert_eq!(c.access(0x8000).latency, h.mem_latency_cycles);
        assert_eq!(c.access(0x8000).latency, h.l1.hit_latency_cycles);
    }
}
