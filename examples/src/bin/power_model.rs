//! Trains a reduced bottom-up power model on simulated measurements and uses its
//! decomposability to break a SPEC proxy's power into components.

use microprobe::platform::Platform;
use mp_examples::example_platform;
use mp_power::{BottomUpModel, PowerModel, SampleKind, TrainingSet, WorkloadSample};
use mp_runtime::{ExperimentPlan, ExperimentSession};
use mp_uarch::{CmpSmtConfig, SmtMode};
use mp_workloads::{spec_proxies, TrainingOptions, TrainingSuite};

fn main() {
    let session = ExperimentSession::new(example_platform());
    let arch = session.platform().uarch().clone();

    // 1. Generate a reduced Table 2 training suite and measure it (in parallel on the
    //    work-stealing executor; honours MP_THREADS).
    let suite = TrainingSuite::generate(&arch, TrainingOptions::reduced(0.05, 96))
        .expect("training suite generates");
    let configs: Vec<CmpSmtConfig> = vec![
        CmpSmtConfig::new(1, SmtMode::Smt1),
        CmpSmtConfig::new(1, SmtMode::Smt2),
        CmpSmtConfig::new(1, SmtMode::Smt4),
        CmpSmtConfig::new(2, SmtMode::Smt2),
        CmpSmtConfig::new(4, SmtMode::Smt4),
    ];
    let mut plan = ExperimentPlan::new();
    for tb in suite.benchmarks() {
        let kind = if tb.family.is_random() { SampleKind::Random } else { SampleKind::MicroArch };
        plan.sweep(tb.benchmark.name(), &tb.benchmark, &configs, kind);
    }
    let mut training = TrainingSet::new();
    training.extend(session.run(&plan));
    println!("measured {} training samples", training.len());

    // 2. Train the bottom-up model.
    let model = BottomUpModel::train(&training, session.platform().idle_power())
        .expect("training succeeds");
    println!(
        "fitted SMT effect {:.2}, CMP effect {:.2}, uncore {:.2}",
        model.smt_effect(),
        model.cmp_effect(),
        model.uncore()
    );

    // 3. Predict and decompose one SPEC proxy on a configuration.
    let proxy = &spec_proxies()[5]; // mcf
    let bench = proxy.generate(&arch, 128).expect("proxy generates");
    let config = CmpSmtConfig::new(4, SmtMode::Smt4);
    let m = session.measure(&bench, config);
    let sample = WorkloadSample::from_measurement(proxy.name, &m);
    let breakdown = model.breakdown(&sample).expect("bottom-up models decompose");

    println!("\n{} on {config}:", proxy.name);
    println!("  measured power : {:.1}", sample.power);
    println!(
        "  predicted power: {:.1}  ({:+.1}% error)",
        model.predict(&sample),
        100.0 * (model.predict(&sample) - sample.power) / sample.power
    );
    for (name, pct) in
        mp_power::PowerBreakdownEstimate::COMPONENT_NAMES.iter().zip(breakdown.percentages())
    {
        println!("  {name:<22} {pct:>5.1}%");
    }
}
