//! Executable micro-benchmark kernels.

use mp_isa::Instruction;

/// How the generator initialised the data (registers, immediates and memory) consumed by
/// the kernel.
///
/// The paper observes that EPI is largely insensitive to *which* random values are used
/// but that all-zero data can reduce EPI by up to 40% — the operand switching activity in
/// the datapath collapses.  The simulator's ground-truth energy model uses this profile
/// as its operand-switching scale factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataProfile {
    /// Registers/immediates/memory initialised with random values (maximum switching).
    #[default]
    Random,
    /// Initialised with a repeated constant pattern (e.g. `0b01010101`), reduced
    /// switching.
    Constant,
    /// Initialised with zeroes: minimum switching activity.
    Zeros,
}

impl DataProfile {
    /// The operand-dependent switching scale factor applied to datapath energy.
    pub fn switching_factor(self) -> f64 {
        match self {
            DataProfile::Random => 1.0,
            DataProfile::Constant => 0.85,
            DataProfile::Zeros => 0.60,
        }
    }
}

/// An executable micro-benchmark: an endless loop over `body`, as produced by the
/// MicroProbe synthesizer (the paper's common skeleton is a 4 K-instruction endless
/// loop).
///
/// One copy of the kernel is deployed per hardware thread context by
/// [`ChipSim`](crate::ChipSim), mirroring the paper's deployment methodology
/// (Section 3).
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    name: String,
    body: Vec<Instruction>,
    data: DataProfile,
    mispredict_rate: f64,
}

impl Kernel {
    /// Creates a kernel from a loop body.
    ///
    /// # Panics
    ///
    /// Panics if the body is empty or the misprediction rate is outside `[0, 1]`.
    pub fn new(name: impl Into<String>, body: Vec<Instruction>) -> Self {
        let name = name.into();
        assert!(!body.is_empty(), "kernel `{name}` must have a non-empty loop body");
        Self { name, body, data: DataProfile::Random, mispredict_rate: 0.0 }
    }

    /// Sets the data initialisation profile.
    pub fn with_data_profile(mut self, data: DataProfile) -> Self {
        self.data = data;
        self
    }

    /// Sets the misprediction rate applied to conditional branches in the body.
    ///
    /// # Panics
    ///
    /// Panics if the rate is outside `[0, 1]`.
    pub fn with_mispredict_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "misprediction rate must be in [0,1]");
        self.mispredict_rate = rate;
        self
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The loop body.
    pub fn body(&self) -> &[Instruction] {
        &self.body
    }

    /// Number of instructions in the loop body.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Returns `true` if the body is empty (never true for constructed kernels).
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Data initialisation profile.
    pub fn data_profile(&self) -> DataProfile {
        self.data
    }

    /// Conditional branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        self.mispredict_rate
    }

    /// A 64-bit hash of the kernel's *content* — loop body, data profile and
    /// misprediction rate, excluding the name — so deployments with many hardware
    /// thread contexts can bucket repeated kernels without deep comparisons.
    ///
    /// Two kernels that simulate identically hash identically; collisions are possible
    /// and callers must confirm with an equality check.
    pub fn content_hash(&self) -> u64 {
        self.content_hash_with(0)
    }

    /// [`content_hash`](Self::content_hash) scoped to a backend: mixes the machine
    /// spec digest (`MicroArchitecture::spec_digest`) into the fingerprint, so the
    /// same kernel content simulated on two different backends hashes differently.
    ///
    /// A digest of 0 (the hand-coded / non-spec-loaded marker) reproduces the plain
    /// backend-blind `content_hash`.
    pub fn content_hash_with(&self, backend_digest: u128) -> u64 {
        use std::fmt::Write as _;
        use std::hash::{Hash, Hasher};

        /// Streams formatted output into a hasher without materialising a string
        /// (bodies reach thousands of instructions).
        struct HashWriter(std::collections::hash_map::DefaultHasher);

        impl std::fmt::Write for HashWriter {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                s.hash(&mut self.0);
                Ok(())
            }
        }

        let mut writer = HashWriter(std::collections::hash_map::DefaultHasher::new());
        if backend_digest != 0 {
            backend_digest.hash(&mut writer.0);
        }
        // The body has no stable binary serialisation; its `Debug` form is a faithful
        // content encoding (every operand, memory access and attribute).
        write!(writer, "{:?}|{:?}|{}", self.body, self.data, self.mispredict_rate.to_bits())
            .expect("hashing formatter never fails");
        writer.0.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_isa::power_isa::power_isa_v206b;
    use mp_isa::{Operand, RegRef};

    fn add_inst() -> Instruction {
        let isa = power_isa_v206b();
        let (id, _) = isa.get("add").unwrap();
        Instruction::new(
            &isa,
            id,
            vec![
                Operand::Reg(RegRef::gpr(1)),
                Operand::Reg(RegRef::gpr(2)),
                Operand::Reg(RegRef::gpr(3)),
            ],
            None,
        )
        .unwrap()
    }

    #[test]
    fn kernel_builders() {
        let k = Kernel::new("k", vec![add_inst()])
            .with_data_profile(DataProfile::Zeros)
            .with_mispredict_rate(0.1);
        assert_eq!(k.name(), "k");
        assert_eq!(k.len(), 1);
        assert_eq!(k.data_profile(), DataProfile::Zeros);
        assert!((k.mispredict_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty loop body")]
    fn empty_body_is_rejected() {
        let _ = Kernel::new("empty", vec![]);
    }

    #[test]
    fn switching_factors_ordered() {
        assert!(DataProfile::Zeros.switching_factor() < DataProfile::Constant.switching_factor());
        assert!(DataProfile::Constant.switching_factor() < DataProfile::Random.switching_factor());
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn invalid_mispredict_rate_is_rejected() {
        let _ = Kernel::new("k", vec![add_inst()]).with_mispredict_rate(1.5);
    }

    #[test]
    fn content_hash_ignores_the_name_but_not_the_content() {
        let a = Kernel::new("a", vec![add_inst()]);
        let renamed = Kernel::new("b", vec![add_inst()]);
        assert_eq!(a.content_hash(), renamed.content_hash());
        let zeros = Kernel::new("a", vec![add_inst()]).with_data_profile(DataProfile::Zeros);
        assert_ne!(a.content_hash(), zeros.content_hash());
        let longer = Kernel::new("a", vec![add_inst(), add_inst()]);
        assert_ne!(a.content_hash(), longer.content_hash());
        let noisy = Kernel::new("a", vec![add_inst()]).with_mispredict_rate(0.25);
        assert_ne!(a.content_hash(), noisy.content_hash());
    }

    #[test]
    fn content_hash_is_scoped_to_the_backend_digest() {
        let a = Kernel::new("a", vec![add_inst()]);
        assert_eq!(a.content_hash_with(0), a.content_hash(), "digest 0 is the plain hash");
        assert_ne!(a.content_hash_with(1), a.content_hash_with(2), "backends do not collide");
        let renamed = Kernel::new("b", vec![add_inst()]);
        assert_eq!(
            a.content_hash_with(7),
            renamed.content_hash_with(7),
            "the name stays excluded under a backend digest"
        );
    }
}
